"""Tests for sampling-plan save/load."""

import pytest

from repro.core.sampler import MEGsim, SamplingPlan
from repro.gpu.cycle_sim import CycleAccurateSimulator


@pytest.fixture
def plan(tiny_trace):
    return MEGsim().plan(tiny_trace)


class TestPersistence:
    def test_round_trip_clusters(self, plan, tmp_path):
        path = tmp_path / "plan.json"
        plan.save(path)
        restored = SamplingPlan.load(path)
        assert restored.trace_name == plan.trace_name
        assert restored.total_frames == plan.total_frames
        assert restored.representative_frames == plan.representative_frames
        assert [c.members for c in restored.clusters] == [
            c.members for c in plan.clusters
        ]

    def test_round_trip_cluster_sizes(self, plan, tmp_path):
        """The restored clustering reports the real cluster populations.

        Regression: the placeholder KMeansResult used to carry all-zero
        labels, so ``search.clustering.cluster_sizes()`` lumped every
        frame into cluster 0 after a reload.
        """
        path = tmp_path / "plan.json"
        plan.save(path)
        restored = SamplingPlan.load(path)
        original_sizes = [len(c.members) for c in plan.clusters]
        assert list(restored.search.clustering.cluster_sizes()) == (
            original_sizes
        )
        assert list(plan.search.clustering.cluster_sizes()) == original_sizes

    def test_round_trip_labels(self, plan, tmp_path):
        path = tmp_path / "plan.json"
        plan.save(path)
        restored = SamplingPlan.load(path)
        labels = restored.search.clustering.labels
        for row, cluster in enumerate(restored.clusters):
            assert all(labels[frame] == row for frame in cluster.members)

    def test_round_trip_search_record(self, plan, tmp_path):
        path = tmp_path / "plan.json"
        plan.save(path)
        restored = SamplingPlan.load(path)
        assert restored.search.chosen_k == plan.search.chosen_k
        assert restored.search.bic_scores == plan.search.bic_scores

    def test_restored_plan_estimates(self, plan, tiny_trace, tmp_path):
        """A reloaded plan drives sampling + extrapolation end to end."""
        path = tmp_path / "plan.json"
        plan.save(path)
        restored = SamplingPlan.load(path)
        sim = CycleAccurateSimulator()
        reps = sim.simulate(
            tiny_trace, frame_ids=list(restored.representative_frames)
        )
        estimate = restored.estimate(
            dict(zip(reps.frame_ids, reps.frame_stats))
        )
        direct = plan.estimate(dict(zip(reps.frame_ids, reps.frame_stats)))
        assert estimate.cycles == pytest.approx(direct.cycles)

    def test_reduction_factor_preserved(self, plan, tmp_path):
        path = tmp_path / "plan.json"
        plan.save(path)
        restored = SamplingPlan.load(path)
        assert restored.reduction_factor == pytest.approx(plan.reduction_factor)
