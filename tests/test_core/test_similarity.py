"""Tests for the similarity matrix (Figure 5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import ClusteringError
from repro.core.similarity import render_similarity_matrix, similarity_matrix


class TestMatrix:
    def test_diagonal_zero(self):
        rng = np.random.default_rng(0)
        features = rng.normal(size=(10, 4))
        matrix = similarity_matrix(features, upper_only=False)
        assert np.allclose(np.diag(matrix), 0.0)

    def test_matches_pairwise_distance(self):
        features = np.array([[0.0, 0.0], [3.0, 4.0]])
        matrix = similarity_matrix(features, upper_only=False)
        assert matrix[0, 1] == pytest.approx(5.0)
        assert matrix[1, 0] == pytest.approx(5.0)

    def test_upper_only_zeroes_lower_triangle(self):
        rng = np.random.default_rng(1)
        matrix = similarity_matrix(rng.normal(size=(6, 3)), upper_only=True)
        assert np.allclose(np.tril(matrix, k=-1), 0.0)
        assert matrix[0, 5] > 0

    def test_identical_frames_distance_zero(self):
        features = np.ones((4, 3))
        matrix = similarity_matrix(features, upper_only=False)
        assert np.allclose(matrix, 0.0)

    def test_invalid_shape(self):
        with pytest.raises(ClusteringError):
            similarity_matrix(np.zeros(5))

    @given(
        features=arrays(
            np.float64,
            st.tuples(st.integers(2, 15), st.integers(1, 4)),
            elements=st.floats(-1e3, 1e3, allow_nan=False),
        )
    )
    @settings(max_examples=40)
    def test_symmetry_and_nonnegativity(self, features):
        matrix = similarity_matrix(features, upper_only=False)
        assert np.all(matrix >= 0.0)
        assert np.allclose(matrix, matrix.T, atol=1e-6)

    @given(
        features=arrays(
            np.float64,
            st.tuples(st.integers(3, 12), st.integers(1, 3)),
            elements=st.floats(-100, 100, allow_nan=False),
        )
    )
    @settings(max_examples=40)
    def test_triangle_inequality(self, features):
        matrix = similarity_matrix(features, upper_only=False)
        n = matrix.shape[0]
        for i in range(n):
            for j in range(n):
                for k in range(n):
                    assert matrix[i, j] <= matrix[i, k] + matrix[k, j] + 1e-6


class TestRendering:
    def test_render_shape(self):
        rng = np.random.default_rng(0)
        matrix = similarity_matrix(rng.normal(size=(100, 4)), upper_only=False)
        art = render_similarity_matrix(matrix, width=20)
        lines = art.splitlines()
        assert len(lines) == 20
        assert all(len(line) == 20 for line in lines)

    def test_similar_block_uses_dense_chars(self):
        # Two repeated halves: block structure must appear.
        features = np.vstack([np.zeros((20, 2)), np.full((20, 2), 50.0)])
        matrix = similarity_matrix(features, upper_only=False)
        art = render_similarity_matrix(matrix, width=4, charset=" #")
        lines = art.splitlines()
        # Diagonal blocks similar (space), off-diagonal dissimilar (#).
        assert lines[0][0] == " "
        assert lines[0][3] == "#"

    def test_small_matrix(self):
        matrix = similarity_matrix(np.zeros((2, 2)), upper_only=False)
        art = render_similarity_matrix(matrix, width=10)
        assert len(art.splitlines()) == 2

    def test_non_square_rejected(self):
        with pytest.raises(ClusteringError):
            render_similarity_matrix(np.zeros((3, 4)))
