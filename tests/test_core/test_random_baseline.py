"""Tests for the random sub-sampling baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AnalysisError
from repro.core.random_baseline import random_sampling_plan


class TestPlan:
    def test_ranges_partition_sequence(self):
        rng = np.random.default_rng(0)
        clusters = random_sampling_plan(100, 7, rng)
        members = [m for c in clusters for m in c.members]
        assert sorted(members) == list(range(100))

    def test_fixed_size_ranges(self):
        rng = np.random.default_rng(0)
        clusters = random_sampling_plan(100, 4, rng)
        assert all(c.weight == 25 for c in clusters)

    def test_uneven_division(self):
        rng = np.random.default_rng(0)
        clusters = random_sampling_plan(10, 3, rng)
        assert sorted(c.weight for c in clusters) == [3, 3, 4]

    def test_representative_inside_range(self):
        rng = np.random.default_rng(1)
        for cluster in random_sampling_plan(50, 9, rng):
            assert cluster.members[0] <= cluster.representative <= cluster.members[-1]

    def test_k_equals_n(self):
        rng = np.random.default_rng(2)
        clusters = random_sampling_plan(5, 5, rng)
        assert [c.representative for c in clusters] == [0, 1, 2, 3, 4]

    def test_k_one(self):
        rng = np.random.default_rng(3)
        (cluster,) = random_sampling_plan(20, 1, rng)
        assert cluster.weight == 20

    def test_randomness_uses_rng(self):
        a = random_sampling_plan(100, 5, np.random.default_rng(0))
        b = random_sampling_plan(100, 5, np.random.default_rng(0))
        c = random_sampling_plan(100, 5, np.random.default_rng(99))
        assert [x.representative for x in a] == [x.representative for x in b]
        assert [x.representative for x in a] != [x.representative for x in c]

    @pytest.mark.parametrize("n,k", [(0, 1), (10, 0), (10, 11)])
    def test_invalid(self, n, k):
        with pytest.raises(AnalysisError):
            random_sampling_plan(n, k, np.random.default_rng(0))

    @given(n=st.integers(1, 500), k_fraction=st.floats(0.01, 1.0),
           seed=st.integers(0, 20))
    @settings(max_examples=50)
    def test_weights_always_sum_to_n(self, n, k_fraction, seed):
        k = max(1, min(n, int(n * k_fraction)))
        clusters = random_sampling_plan(n, k, np.random.default_rng(seed))
        assert sum(c.weight for c in clusters) == n
        assert len(clusters) == k
