"""Tests for Pearson and multiple correlation (Equations 1-3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AnalysisError
from repro.core.correlation import multiple_correlation, pearson_correlation


class TestPearson:
    def test_perfect_positive(self):
        x = np.arange(10.0)
        assert pearson_correlation(x, 3 * x + 2) == pytest.approx(1.0)

    def test_perfect_negative(self):
        x = np.arange(10.0)
        assert pearson_correlation(x, -x) == pytest.approx(-1.0)

    def test_constant_series_zero(self):
        assert pearson_correlation(np.ones(5), np.arange(5.0)) == 0.0

    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        x, y = rng.normal(size=50), rng.normal(size=50)
        assert pearson_correlation(x, y) == pytest.approx(
            np.corrcoef(x, y)[0, 1]
        )

    def test_length_mismatch(self):
        with pytest.raises(AnalysisError):
            pearson_correlation(np.arange(3.0), np.arange(4.0))

    def test_too_short(self):
        with pytest.raises(AnalysisError):
            pearson_correlation(np.array([1.0]), np.array([2.0]))

    @given(
        data=st.lists(
            st.tuples(st.floats(-1e3, 1e3), st.floats(-1e3, 1e3)),
            min_size=3, max_size=60,
        )
    )
    @settings(max_examples=50)
    def test_bounded(self, data):
        x = np.array([d[0] for d in data])
        y = np.array([d[1] for d in data])
        assert -1.0 - 1e-9 <= pearson_correlation(x, y) <= 1.0 + 1e-9


class TestMultipleCorrelation:
    def test_exact_linear_combination(self):
        rng = np.random.default_rng(1)
        predictors = rng.normal(size=(80, 3))
        target = predictors @ np.array([2.0, -1.0, 0.5]) + 7.0
        assert multiple_correlation(predictors, target) == pytest.approx(1.0)

    def test_single_predictor_equals_abs_pearson(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=60)
        y = 0.6 * x + rng.normal(scale=0.5, size=60)
        r_multi = multiple_correlation(x.reshape(-1, 1), y)
        assert r_multi == pytest.approx(abs(pearson_correlation(x, y)), abs=1e-9)

    def test_independent_predictors_low(self):
        rng = np.random.default_rng(3)
        predictors = rng.normal(size=(500, 2))
        target = rng.normal(size=500)
        assert multiple_correlation(predictors, target) < 0.2

    def test_rank_deficient_predictors_handled(self):
        rng = np.random.default_rng(4)
        base = rng.normal(size=(60, 1))
        predictors = np.hstack([base, 2 * base, -base])  # rank 1
        target = base.ravel() * 3.0
        assert multiple_correlation(predictors, target) == pytest.approx(
            1.0, abs=1e-6
        )

    def test_constant_columns_dropped(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(40, 1))
        predictors = np.hstack([x, np.ones((40, 1))])
        target = x.ravel()
        assert multiple_correlation(predictors, target) == pytest.approx(1.0)

    def test_all_constant_predictors(self):
        assert multiple_correlation(np.ones((10, 2)), np.arange(10.0)) == 0.0

    def test_constant_target(self):
        rng = np.random.default_rng(6)
        assert multiple_correlation(rng.normal(size=(10, 2)), np.ones(10)) == 0.0

    def test_matches_lstsq_r(self):
        """R equals the correlation of target with its least-squares fit."""
        rng = np.random.default_rng(7)
        predictors = rng.normal(size=(100, 4))
        target = predictors @ rng.normal(size=4) + rng.normal(scale=2.0, size=100)
        design = np.hstack([predictors, np.ones((100, 1))])
        fitted = design @ np.linalg.lstsq(design, target, rcond=None)[0]
        expected = pearson_correlation(fitted, target)
        assert multiple_correlation(predictors, target) == pytest.approx(
            expected, abs=1e-6
        )

    def test_row_mismatch(self):
        with pytest.raises(AnalysisError):
            multiple_correlation(np.zeros((5, 2)), np.zeros(6))

    def test_bad_shape(self):
        with pytest.raises(AnalysisError):
            multiple_correlation(np.zeros(5), np.zeros(5))

    @given(seed=st.integers(0, 100))
    @settings(max_examples=30)
    def test_bounded_zero_one(self, seed):
        rng = np.random.default_rng(seed)
        predictors = rng.normal(size=(30, 3))
        target = rng.normal(size=30)
        r = multiple_correlation(predictors, target)
        assert 0.0 <= r <= 1.0
