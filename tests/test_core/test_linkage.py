"""Tests for the agglomerative clustering strategy."""

import numpy as np
import pytest

from repro.errors import ClusteringError
from repro.core.linkage import agglomerative_search


def blobs(k_true=4, n_per=30, separation=60.0, seed=0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.vstack([
        rng.normal(i * separation, 1.0, size=(n_per, 2)) for i in range(k_true)
    ])


class TestAgglomerative:
    def test_finds_blob_structure(self):
        result = agglomerative_search(blobs(k_true=4))
        assert 3 <= result.chosen_k <= 6

    def test_blob_members_grouped_together(self):
        points = blobs(k_true=3, n_per=20)
        result = agglomerative_search(points)
        labels = result.clustering.labels
        for blob in range(3):
            segment = labels[blob * 20:(blob + 1) * 20]
            assert len(set(segment)) == 1

    def test_threshold_controls_k(self):
        points = blobs(k_true=5)
        low = agglomerative_search(points, threshold=0.2)
        high = agglomerative_search(points, threshold=1.0)
        assert low.chosen_k <= high.chosen_k

    def test_max_k(self):
        result = agglomerative_search(blobs(k_true=6), max_k=3)
        assert result.chosen_k <= 3

    def test_single_point(self):
        result = agglomerative_search(np.zeros((1, 3)))
        assert result.chosen_k == 1

    def test_identical_points(self):
        result = agglomerative_search(np.ones((20, 2)))
        assert result.chosen_k == 1

    def test_deterministic(self):
        a = agglomerative_search(blobs())
        b = agglomerative_search(blobs())
        assert a.chosen_k == b.chosen_k
        assert np.array_equal(a.clustering.labels, b.clustering.labels)

    def test_invalid(self):
        with pytest.raises(ClusteringError):
            agglomerative_search(np.zeros((0, 2)))
        with pytest.raises(ClusteringError):
            agglomerative_search(blobs(), threshold=2.0)


class TestSamplerIntegration:
    def test_agglomerative_plan(self, tiny_trace):
        from repro.core.sampler import MEGsim, MEGsimOptions

        plan = MEGsim(
            MEGsimOptions(cluster_method="agglomerative")
        ).plan(tiny_trace)
        assert sum(c.weight for c in plan.clusters) == tiny_trace.frame_count
        assert plan.selected_frame_count >= 2
