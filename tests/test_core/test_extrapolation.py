"""Tests for whole-sequence statistic extrapolation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AnalysisError
from repro.core.extrapolation import extrapolate_statistics
from repro.core.representatives import Cluster
from repro.gpu.stats import FrameStats


def stats_with_cycles(cycles: float) -> FrameStats:
    return FrameStats(cycles=cycles, fragment_instructions=cycles * 4)


class TestExtrapolation:
    def test_single_cluster(self):
        cluster = Cluster(index=0, representative=2, members=(0, 1, 2), weight=3)
        estimate = extrapolate_statistics(
            (cluster,), {2: stats_with_cycles(100.0)}
        )
        assert estimate.cycles == pytest.approx(300.0)

    def test_multiple_clusters_sum(self):
        clusters = (
            Cluster(index=0, representative=0, members=(0, 1), weight=2),
            Cluster(index=1, representative=2, members=(2, 3, 4), weight=3),
        )
        estimate = extrapolate_statistics(
            clusters,
            {0: stats_with_cycles(10.0), 2: stats_with_cycles(100.0)},
        )
        assert estimate.cycles == pytest.approx(2 * 10.0 + 3 * 100.0)

    def test_exact_when_every_frame_is_a_cluster(self):
        """k = N degenerates to full simulation: zero error by construction."""
        values = [13.0, 7.0, 42.0]
        clusters = tuple(
            Cluster(index=i, representative=i, members=(i,), weight=1)
            for i in range(3)
        )
        estimate = extrapolate_statistics(
            clusters, {i: stats_with_cycles(v) for i, v in enumerate(values)}
        )
        assert estimate.cycles == pytest.approx(sum(values))

    def test_missing_representative_rejected(self):
        cluster = Cluster(index=0, representative=1, members=(0, 1), weight=2)
        with pytest.raises(AnalysisError):
            extrapolate_statistics((cluster,), {0: stats_with_cycles(1.0)})

    def test_no_clusters_rejected(self):
        with pytest.raises(AnalysisError):
            extrapolate_statistics((), {})

    @given(
        populations=st.lists(st.integers(1, 50), min_size=1, max_size=8),
        values=st.lists(st.floats(0.0, 1e6, allow_nan=False), min_size=8, max_size=8),
    )
    @settings(max_examples=40)
    def test_linear_in_weights(self, populations, values):
        clusters = []
        offset = 0
        rep_stats = {}
        for index, population in enumerate(populations):
            members = tuple(range(offset, offset + population))
            clusters.append(
                Cluster(index=index, representative=offset, members=members,
                        weight=population)
            )
            rep_stats[offset] = stats_with_cycles(values[index])
            offset += population
        estimate = extrapolate_statistics(tuple(clusters), rep_stats)
        expected = sum(p * values[i] for i, p in enumerate(populations))
        assert estimate.cycles == pytest.approx(expected, rel=1e-9)
