"""Tests for random linear projection."""

import numpy as np
import pytest

from repro.errors import ClusteringError
from repro.core.projection import project_features, random_projection_matrix


class TestMatrix:
    def test_shape(self):
        assert random_projection_matrix(100, 15, seed=0).shape == (100, 15)

    def test_deterministic(self):
        a = random_projection_matrix(20, 5, seed=3)
        b = random_projection_matrix(20, 5, seed=3)
        assert np.array_equal(a, b)

    def test_invalid(self):
        with pytest.raises(ClusteringError):
            random_projection_matrix(0, 5)


class TestProjection:
    def test_output_shape(self):
        rng = np.random.default_rng(0)
        projected = project_features(rng.normal(size=(50, 100)), 15)
        assert projected.shape == (50, 15)

    def test_narrow_matrix_untouched(self):
        rng = np.random.default_rng(1)
        features = rng.normal(size=(30, 8))
        projected = project_features(features, 15)
        assert np.array_equal(projected, features)
        assert projected is not features  # a copy, not an alias

    def test_distances_approximately_preserved(self):
        """Johnson-Lindenstrauss: relative distances survive projection."""
        rng = np.random.default_rng(2)
        features = rng.normal(size=(60, 400))
        projected = project_features(features, 64, seed=0)

        def pairwise(m):
            return np.linalg.norm(m[:, None, :] - m[None, :, :], axis=2)

        original = pairwise(features)
        reduced = pairwise(projected)
        mask = original > 0
        ratios = reduced[mask] / original[mask]
        assert 0.6 < ratios.mean() < 1.4
        assert ratios.std() < 0.25

    def test_separated_clusters_stay_separated(self):
        rng = np.random.default_rng(3)
        a = rng.normal(0.0, 1.0, size=(40, 200))
        b = rng.normal(60.0, 1.0, size=(40, 200))
        projected = project_features(np.vstack([a, b]), 10, seed=1)
        pa, pb = projected[:40], projected[40:]
        gap = np.linalg.norm(pa.mean(axis=0) - pb.mean(axis=0))
        # Within-cluster spread (deviation from each cluster's own center).
        spread = max(
            (pa - pa.mean(axis=0)).std(), (pb - pb.mean(axis=0)).std()
        )
        assert gap > 5 * spread

    def test_invalid(self):
        with pytest.raises(ClusteringError):
            project_features(np.zeros((5, 10)), 0)
        with pytest.raises(ClusteringError):
            project_features(np.zeros(5), 3)


class TestSamplerIntegration:
    def test_projected_plan_covers_frames(self, tiny_trace):
        from repro.core.sampler import MEGsim, MEGsimOptions

        plan = MEGsim(MEGsimOptions(projection_dims=2)).plan(tiny_trace)
        assert sum(c.weight for c in plan.clusters) == tiny_trace.frame_count
        assert plan.features.shape[1] <= 3
