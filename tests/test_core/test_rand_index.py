"""Tests for the Adjusted Rand Index."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AnalysisError
from repro.core.rand_index import adjusted_rand_index


class TestKnownValues:
    def test_identical_partitions(self):
        labels = [0, 0, 1, 1, 2, 2]
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)

    def test_relabeled_partition_is_identical(self):
        a = [0, 0, 1, 1, 2, 2]
        b = ["x", "x", "z", "z", "y", "y"]
        assert adjusted_rand_index(a, b) == pytest.approx(1.0)

    def test_textbook_value(self):
        """Hand-computed contingency example."""
        a = [0, 0, 0, 1, 1, 1]
        b = [0, 0, 1, 1, 2, 2]
        # Contingency: rows {3,3}, cols {2,2,2}; sum_cells C(2,2)*?:
        # pairs-in-both = C(2,2 counts): cells are [2,1,0],[0,1,2] ->
        # sum_cells = 1 + 0 + 0 + 0 + 0 + 1 = 2
        # sum_rows = 2*C(3,2) = 6 ; sum_cols = 3*C(2,2)=3 ; total = 15
        expected_index = 6 * 3 / 15.0
        maximum = (6 + 3) / 2.0
        expected = (2 - expected_index) / (maximum - expected_index)
        assert adjusted_rand_index(a, b) == pytest.approx(expected)

    def test_independent_partitions_near_zero(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 4, size=2000)
        b = rng.integers(0, 4, size=2000)
        assert abs(adjusted_rand_index(a, b)) < 0.05

    def test_all_singletons_identical(self):
        labels = list(range(8))
        assert adjusted_rand_index(labels, labels) == 1.0

    def test_single_cluster_both(self):
        assert adjusted_rand_index([0] * 5, [1] * 5) == 1.0

    def test_refinement_scores_below_one(self):
        coarse = [0, 0, 0, 0, 1, 1, 1, 1]
        fine = [0, 0, 1, 1, 2, 2, 3, 3]
        ari = adjusted_rand_index(coarse, fine)
        assert 0.0 < ari < 1.0


class TestValidation:
    def test_length_mismatch(self):
        with pytest.raises(AnalysisError):
            adjusted_rand_index([0, 1], [0, 1, 2])

    def test_empty(self):
        with pytest.raises(AnalysisError):
            adjusted_rand_index([], [])


class TestProperties:
    @given(
        labels=st.lists(st.integers(0, 4), min_size=2, max_size=60),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=60)
    def test_symmetric(self, labels, seed):
        rng = np.random.default_rng(seed)
        other = rng.integers(0, 3, size=len(labels))
        assert adjusted_rand_index(labels, other) == pytest.approx(
            adjusted_rand_index(other, labels)
        )

    @given(labels=st.lists(st.integers(0, 5), min_size=2, max_size=60))
    @settings(max_examples=60)
    def test_self_agreement_is_one(self, labels):
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)

    @given(
        labels=st.lists(st.integers(0, 4), min_size=3, max_size=50),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=60)
    def test_bounded_above_by_one(self, labels, seed):
        rng = np.random.default_rng(seed)
        other = rng.integers(0, 4, size=len(labels))
        assert adjusted_rand_index(labels, other) <= 1.0 + 1e-12
