"""Calibration regression tests: the simulated suite must stay in the
Table II / Figure 4 ballpark.

These pin the workload knobs + timing/power model against accidental
drift: each benchmark's per-frame cycles must stay within a factor of the
paper's Table II value, IPC in a plausible band, and the average power
split near the Figure 4 fractions the feature weights rely on.
"""

import pytest

from repro.gpu.cycle_sim import CycleAccurateSimulator
from repro.workloads.benchmarks import benchmark_aliases, make_benchmark

SCALE = 0.02

#: Table II: cycles (millions) / frames.
PAPER_CYCLES_PER_FRAME_M = {
    "asp": 107811 / 4000, "bbr1": 39839 / 2500, "bbr2": 58317 / 4000,
    "hcr": 10111 / 2000, "hwh": 86791 / 4000, "jjo": 41219 / 5000,
    "pvz": 39534 / 5000, "spd": 75938 / 5000,
}


@pytest.fixture(scope="module")
def totals():
    simulator = CycleAccurateSimulator()
    results = {}
    for alias in benchmark_aliases():
        trace = make_benchmark(alias, scale=SCALE)
        result = simulator.simulate(trace)
        results[alias] = (result.totals, len(result.frame_stats))
    return results


class TestTable2Calibration:
    @pytest.mark.parametrize("alias", list(PAPER_CYCLES_PER_FRAME_M))
    def test_cycles_per_frame_in_ballpark(self, totals, alias):
        stats, frames = totals[alias]
        measured = stats.cycles / frames / 1e6
        paper = PAPER_CYCLES_PER_FRAME_M[alias]
        assert paper / 2 < measured < paper * 2, (
            f"{alias}: {measured:.1f}M cycles/frame vs paper {paper:.1f}M"
        )

    @pytest.mark.parametrize("alias", list(PAPER_CYCLES_PER_FRAME_M))
    def test_ipc_plausible(self, totals, alias):
        stats, _ = totals[alias]
        assert 2.5 < stats.ipc < 7.0

    def test_3d_heavier_than_2d(self, totals):
        def per_frame(alias):
            stats, frames = totals[alias]
            return stats.cycles / frames
        heaviest_2d = max(per_frame(a) for a in ("hcr", "jjo", "pvz"))
        for alias in ("asp", "hwh", "spd"):
            assert per_frame(alias) > heaviest_2d


class TestFig4Calibration:
    def test_average_power_split_near_paper(self, totals):
        geometry = raster = tiling = 0.0
        for stats, _ in totals.values():
            g, r, t = stats.power_fractions()
            geometry += g / len(totals)
            raster += r / len(totals)
            tiling += t / len(totals)
        assert abs(geometry - 0.108) < 0.06
        assert abs(raster - 0.745) < 0.10
        assert abs(tiling - 0.147) < 0.06

    def test_raster_dominates_every_benchmark(self, totals):
        for alias, (stats, _) in totals.items():
            g, r, t = stats.power_fractions()
            assert r > 0.45, alias
            assert r > g and r > t, alias

    def test_realistic_power_envelope(self, totals):
        for alias, (stats, _) in totals.items():
            watts = stats.average_power_watts()
            assert 0.2 < watts < 5.0, f"{alias}: {watts:.2f} W"
