"""Tests for workload specifications."""

import pytest

from repro.errors import ConfigError
from repro.workloads.specs import GameSpec, PhaseSpec, ScriptEntry


def make_spec(**overrides) -> GameSpec:
    phases = (
        PhaseSpec("menu", draw_calls=5, shader_groups=(0,)),
        PhaseSpec("play", draw_calls=10, shader_groups=(1,)),
    )
    params = dict(
        alias="t", title="Test", description="test", game_type="3D",
        downloads_millions="1-5", frames=30,
        vertex_shader_count=4, fragment_shader_count=4,
        phases=phases,
        script=(ScriptEntry("menu", 10), ScriptEntry("play", 20)),
        seed=1, shader_group_count=2,
    )
    params.update(overrides)
    return GameSpec(**params)


class TestPhaseSpec:
    @pytest.mark.parametrize("kwargs", [
        {"draw_calls": 0},
        {"object_scale": 0.0},
        {"overdraw": 0.5},
        {"transparent_fraction": 1.5},
        {"shader_groups": ()},
    ])
    def test_invalid(self, kwargs):
        params = dict(name="p", draw_calls=5)
        params.update(kwargs)
        with pytest.raises(ConfigError):
            PhaseSpec(**params)


class TestScriptEntry:
    def test_zero_frames_rejected(self):
        with pytest.raises(ConfigError):
            ScriptEntry("menu", 0)


class TestGameSpec:
    def test_valid(self):
        spec = make_spec()
        assert spec.script_frames == 30

    def test_frames_must_match_script(self):
        with pytest.raises(ConfigError):
            make_spec(frames=99)

    def test_unknown_phase_in_script(self):
        with pytest.raises(ConfigError):
            make_spec(script=(ScriptEntry("boss", 30),))

    def test_duplicate_phase_names(self):
        phases = (
            PhaseSpec("menu", draw_calls=5),
            PhaseSpec("menu", draw_calls=6),
        )
        with pytest.raises(ConfigError):
            make_spec(phases=phases, script=(ScriptEntry("menu", 30),))

    def test_shader_group_out_of_range(self):
        phases = (PhaseSpec("menu", draw_calls=5, shader_groups=(9,)),)
        with pytest.raises(ConfigError):
            make_spec(phases=phases, script=(ScriptEntry("menu", 30),))

    def test_bad_game_type(self):
        with pytest.raises(ConfigError):
            make_spec(game_type="4D")

    def test_phase_by_name(self):
        spec = make_spec()
        assert spec.phase_by_name("menu").name == "menu"
        with pytest.raises(ConfigError):
            spec.phase_by_name("boss")


class TestScaling:
    def test_scaled_halves_script(self):
        spec = make_spec().scaled(0.5)
        assert spec.frames == 15
        assert [e.frames for e in spec.script] == [5, 10]

    def test_scaled_preserves_segment_structure(self):
        spec = make_spec().scaled(0.1)
        assert len(spec.script) == 2
        assert all(e.frames >= 1 for e in spec.script)

    def test_scaled_identity(self):
        spec = make_spec().scaled(1.0)
        assert spec.frames == 30

    def test_invalid_scale(self):
        with pytest.raises(ConfigError):
            make_spec().scaled(0.0)

    def test_scale_rounding_an_entry_below_one_frame_is_rejected(self):
        # make_spec's shortest segment is 10 frames; 0.01 rounds it to 0.
        with pytest.raises(ConfigError, match="below 1 frame"):
            make_spec().scaled(0.01)

    def test_rejection_names_the_offending_phase(self):
        with pytest.raises(ConfigError, match="'menu'"):
            make_spec().scaled(0.01)
