"""The ``megsim-workload v1`` capture format: render, parse, replay."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError
from repro.store.fingerprint import payload_digest
from repro.workloads import (
    export_workload_file,
    load_workload_file,
    make_benchmark,
)
from repro.workloads.replay import (
    CSV_COLUMNS,
    WORKLOAD_SCHEMA,
    WORKLOAD_SCHEMA_VERSION,
    parse_workload_text,
    render_workload_text,
)


@pytest.fixture(scope="module")
def trace():
    return make_benchmark("hcr", scale=0.05)


def _csv_row(frame: int, **overrides) -> str:
    values = {
        "frame": frame, "ortho": 0, "cam_x": 0.0, "cam_y": 2.0,
        "cam_z": 8.0, "fov_y": 60.0, "ortho_height": 10.0, "near": 0.1,
        "vs_alu": 16, "fs_alu": 24, "fs_samples": 1, "mesh_vertices": 100,
        "mesh_primitives": 50, "mesh_stride": 32, "mesh_radius": 1.5,
        "mesh_closed": 1, "tex_width": 256, "tex_height": 256,
        "tex_bytes": 4, "pos_x": 0.0, "pos_y": 0.0, "pos_z": -5.0,
        "draw_scale": 1.0, "instances": 1, "overdraw": 1.1, "opaque": 1,
        "depth_layer": 0,
    }
    values.update(overrides)
    return ",".join(str(values[column]) for column in CSV_COLUMNS)


def _csv_text(*rows: str) -> str:
    return "\n".join([",".join(CSV_COLUMNS), *rows]) + "\n"


class TestJsonlRoundTrip:
    def test_lossless(self, trace):
        text = render_workload_text(trace)
        replay = parse_workload_text(text, name="cap")
        assert replay.trace.to_dict() == trace.to_dict()

    def test_fingerprint_is_the_content_hash(self, trace):
        text = render_workload_text(trace)
        replay = parse_workload_text(text, name="cap")
        assert replay.fingerprint() == payload_digest(text)

    def test_export_digest_matches_reload(self, trace, tmp_path):
        path = tmp_path / "cap.jsonl"
        digest = export_workload_file(trace, path)
        assert load_workload_file(path).fingerprint() == digest

    def test_rendered_bytes_are_deterministic(self, trace):
        assert render_workload_text(trace) == render_workload_text(trace)

    def test_header_shape(self, trace):
        header = json.loads(render_workload_text(trace).splitlines()[0])
        assert header["schema"] == WORKLOAD_SCHEMA
        assert header["version"] == WORKLOAD_SCHEMA_VERSION
        assert header["frame_count"] == trace.frame_count


class TestBuild:
    def test_scale_one_is_the_whole_capture(self, trace):
        replay = parse_workload_text(render_workload_text(trace), name="cap")
        assert replay.build() is replay.trace

    def test_fractional_scale_takes_a_prefix(self, trace):
        replay = parse_workload_text(render_workload_text(trace), name="cap")
        built = replay.build(scale=0.5)
        assert built.frame_count == 50
        assert built.to_dict()["frames"] == trace.to_dict()["frames"][:50]

    @pytest.mark.parametrize("scale", [0.0, -1.0, 1.5])
    def test_out_of_range_scale_is_rejected(self, trace, scale):
        replay = parse_workload_text(render_workload_text(trace), name="cap")
        with pytest.raises(ConfigError, match=r"\(0, 1\]"):
            replay.build(scale=scale)


class TestJsonlRejections:
    def test_empty(self):
        with pytest.raises(ConfigError, match="empty"):
            parse_workload_text("", name="cap")

    def test_wrong_schema(self):
        header = json.dumps({"schema": "not-a-workload", "version": 1})
        with pytest.raises(ConfigError, match="not a megsim-workload"):
            parse_workload_text(header + "\n", name="cap")

    def test_future_version(self):
        header = json.dumps({"schema": WORKLOAD_SCHEMA, "version": 99})
        with pytest.raises(ConfigError, match="unsupported"):
            parse_workload_text(header + "\n", name="cap")

    def test_truncated_capture(self, trace):
        lines = render_workload_text(trace).splitlines()
        with pytest.raises(ConfigError, match="declares 100"):
            parse_workload_text("\n".join(lines[:-10]), name="cap")

    def test_malformed_frame_line(self, trace):
        lines = render_workload_text(trace).splitlines()
        lines[3] = "{not json"
        with pytest.raises(ConfigError, match=":4: malformed frame"):
            parse_workload_text("\n".join(lines), name="cap")

    def test_unknown_flavor(self):
        with pytest.raises(ConfigError, match="flavor"):
            parse_workload_text("x", name="cap", flavor="xml")

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigError, match="cannot read"):
            load_workload_file(tmp_path / "absent.jsonl")


class TestCsv:
    def test_parses_frames_and_dedups_resources(self):
        replay = parse_workload_text(
            _csv_text(
                _csv_row(0),
                _csv_row(0, vs_alu=32, pos_x=1.0),
                _csv_row(2, tex_width=128),
            ),
            name="sheet", flavor="csv",
        )
        built = replay.trace
        # Frame ids are rebased dense regardless of the capture's gaps.
        assert [f.frame_id for f in built.frames] == [0, 1]
        assert len(built.frames[0].draw_calls) == 2
        # Identical rows collapse into shared table entries...
        assert len(built.vertex_shaders) == 2
        assert len(built.fragment_shaders) == 1
        assert len(built.meshes) == 1
        # ...while a differing texture gets its own aligned slot.
        assert len(built.textures) == 2
        addresses = [t.base_address for t in built.textures]
        assert len(set(addresses)) == 2
        assert all(a % 256 == 0 for a in addresses)

    def test_load_by_suffix(self, tmp_path):
        path = tmp_path / "sheet.csv"
        path.write_text(_csv_text(_csv_row(0)), encoding="utf-8")
        assert load_workload_file(path).trace.frame_count == 1

    def test_missing_column(self):
        text = "frame,ortho\n0,0\n"
        with pytest.raises(ConfigError, match="missing column"):
            parse_workload_text(text, name="sheet", flavor="csv")

    def test_decreasing_frame_ids(self):
        with pytest.raises(ConfigError, match="non-decreasing"):
            parse_workload_text(
                _csv_text(_csv_row(5), _csv_row(1)),
                name="sheet", flavor="csv",
            )

    def test_bad_boolean(self):
        with pytest.raises(ConfigError, match="must be boolean"):
            parse_workload_text(
                _csv_text(_csv_row(0, opaque="maybe")),
                name="sheet", flavor="csv",
            )

    def test_bad_number_names_the_row(self):
        with pytest.raises(ConfigError, match="row 3"):
            parse_workload_text(
                _csv_text(_csv_row(0), _csv_row(1, vs_alu="many")),
                name="sheet", flavor="csv",
            )

    def test_no_rows(self):
        with pytest.raises(ConfigError, match="no draw rows"):
            parse_workload_text(
                ",".join(CSV_COLUMNS) + "\n", name="sheet", flavor="csv"
            )
