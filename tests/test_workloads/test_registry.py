"""The workload registry: keys, lookup, registration and resolution."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.workloads import (
    BENCHMARKS,
    SCRIPTED_WORKLOADS,
    SyntheticWorkload,
    WorkloadRef,
    get_workload,
    make_benchmark,
    register_workload,
    register_workload_file,
    resolve_workload,
    workload_keys,
)
from repro.workloads.registry import BUILTIN_WORKLOADS, _DYNAMIC
from repro.workloads.replay import export_workload_file


@pytest.fixture(autouse=True)
def _isolated_dynamic_table():
    """Runtime registrations must not leak between tests."""
    saved = dict(_DYNAMIC)
    yield
    _DYNAMIC.clear()
    _DYNAMIC.update(saved)


@pytest.fixture
def capture(tmp_path):
    path = tmp_path / "cap.jsonl"
    export_workload_file(make_benchmark("hcr", scale=0.05), path)
    return path


class TestKeys:
    def test_builtins_are_benchmarks_then_scripted(self):
        assert tuple(BUILTIN_WORKLOADS) == (
            tuple(BENCHMARKS) + tuple(SCRIPTED_WORKLOADS)
        )

    def test_workload_keys_extends_builtins_with_registrations(self, capture):
        assert workload_keys() == tuple(BUILTIN_WORKLOADS)
        ref = register_workload_file(str(capture))
        assert workload_keys() == tuple(BUILTIN_WORKLOADS) + (ref.name,)

    def test_every_key_resolves_to_a_matching_workload(self):
        for key in workload_keys():
            assert get_workload(key).key == key


class TestLookup:
    def test_unknown_key_lists_the_registry(self):
        with pytest.raises(ConfigError, match="hcr-osc"):
            get_workload("definitely-not-a-workload")

    def test_synthetic_wraps_the_benchmark_spec(self):
        workload = get_workload("hcr")
        assert isinstance(workload, SyntheticWorkload)
        assert workload.spec is BENCHMARKS["hcr"]

    def test_builtin_cannot_be_shadowed(self, capture):
        from repro.workloads.replay import load_workload_file

        replay = load_workload_file(capture, name="hcr")
        shadow = SyntheticWorkload(BENCHMARKS["hcr"])
        with pytest.raises(ConfigError, match="shadow"):
            register_workload(shadow)
        # Replays live under the `replay:` prefix, so a capture *named*
        # like a benchmark never collides with it.
        assert register_workload(replay).name == "replay:hcr"


class TestResolve:
    def test_none_ref_resolves_builtin_by_alias(self):
        assert resolve_workload(None, "hcr") is BUILTIN_WORKLOADS["hcr"]

    def test_none_ref_unknown_alias_lists_builtins(self):
        with pytest.raises(ConfigError, match="available:.*hcr-drift"):
            resolve_workload(None, "nope")

    def test_scripted_ref_round_trips(self):
        workload = BUILTIN_WORKLOADS["hcr-osc"]
        assert resolve_workload(workload.ref(), "hcr-osc") is workload

    def test_stale_builtin_fingerprint_is_rejected(self):
        ref = WorkloadRef(
            kind="scripted", name="hcr-osc", fingerprint="0" * 64
        )
        with pytest.raises(ConfigError, match="fingerprint mismatch"):
            resolve_workload(ref, "hcr-osc")

    def test_replay_ref_reloads_from_path(self, capture):
        ref = register_workload_file(str(capture))
        workload = resolve_workload(ref, ref.name)
        assert workload.fingerprint() == ref.fingerprint
        assert workload.trace.frame_count == 100

    def test_replay_ref_detects_a_changed_capture(self, capture):
        ref = register_workload_file(str(capture))
        capture.write_text(
            capture.read_text().replace("hcr", "rch"), encoding="utf-8"
        )
        with pytest.raises(ConfigError, match="content hash"):
            resolve_workload(ref, ref.name)

    def test_replay_ref_without_path_is_rejected(self):
        ref = WorkloadRef(kind="replay", name="replay:x", fingerprint="0" * 64)
        with pytest.raises(ConfigError, match="no capture path"):
            resolve_workload(ref, "replay:x")

    def test_unknown_kind_is_rejected(self):
        ref = WorkloadRef(kind="quantum", name="x", fingerprint="0" * 64)
        with pytest.raises(ConfigError, match="unknown workload kind"):
            resolve_workload(ref, "x")


class TestRefIdentity:
    def test_identity_excludes_the_path(self, capture):
        ref = register_workload_file(str(capture))
        assert ref.path == str(capture)
        assert set(ref.identity()) == {"kind", "name", "fingerprint"}

    def test_same_capture_bytes_same_identity(self, capture, tmp_path):
        copy = tmp_path / "elsewhere.jsonl"
        copy.write_text(capture.read_text(), encoding="utf-8")
        first = register_workload_file(str(capture))
        second = register_workload_file(str(copy), name="cap")
        assert first.identity() == second.identity()
