"""Statistical properties of the generated workloads."""

import numpy as np
import pytest

from repro.scene.shader import FilterMode
from repro.workloads.benchmarks import benchmark_spec
from repro.workloads.generator import GameWorkloadGenerator


@pytest.fixture(scope="module")
def traces():
    return {
        alias: GameWorkloadGenerator(
            benchmark_spec(alias).scaled(0.02)
        ).generate()
        for alias in ("asp", "pvz")
    }


class TestFilteringMix:
    def test_3d_leans_trilinear(self, traces):
        def filter_counts(trace):
            counts = {mode: 0 for mode in FilterMode}
            for shader in trace.fragment_shaders:
                for sample in shader.texture_samples:
                    counts[sample.filter_mode] += 1
            return counts

        counts_3d = filter_counts(traces["asp"])
        counts_2d = filter_counts(traces["pvz"])
        total_3d = sum(counts_3d.values())
        total_2d = sum(counts_2d.values())
        assert total_3d > 0 and total_2d > 0
        # Trilinear mip-mapping is a 3D idiom; 2D sprites stay bilinear.
        assert counts_3d[FilterMode.TRILINEAR] / total_3d > (
            counts_2d[FilterMode.TRILINEAR] / total_2d
        )


class TestDrawCallVolume:
    def test_3d_uses_more_draw_calls(self, traces):
        def mean_calls(trace):
            return np.mean([len(f.draw_calls) for f in trace.frames])

        assert mean_calls(traces["asp"]) > mean_calls(traces["pvz"])

    def test_draw_call_count_varies_over_time(self, traces):
        counts = [len(f.draw_calls) for f in traces["asp"].frames]
        assert len(set(counts)) > 1  # activity gating breathes


class TestTextureCompression:
    def test_mostly_compressed_textures(self, traces):
        for trace in traces.values():
            texel_sizes = [t.texel_bytes for t in trace.textures]
            compressed = sum(1 for s in texel_sizes if s == 1)
            assert compressed >= len(texel_sizes) * 0.4


class TestSceneEvolution:
    def test_intensity_drifts_within_segment(self, traces):
        """Per-frame total scale follows the segment drift, so frames at a
        segment's middle differ measurably from its edges."""
        trace = traces["asp"]
        def frame_mass(frame):
            return sum(dc.scale * dc.instance_count for dc in frame.draw_calls)

        masses = [frame_mass(f) for f in trace.frames]
        assert np.std(masses) / np.mean(masses) > 0.02
