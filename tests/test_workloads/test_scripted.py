"""The adversarial scripted catalog."""

from __future__ import annotations

import pytest

from repro.workloads import (
    BENCHMARKS,
    SCRIPTED_WORKLOADS,
    ScriptedWorkload,
    SyntheticWorkload,
    scripted_keys,
)


class TestCatalog:
    def test_catalog_members(self):
        assert scripted_keys() == ("hcr-osc", "hcr-flip", "hcr-drift")

    def test_keys_match_spec_aliases(self):
        for key, workload in SCRIPTED_WORKLOADS.items():
            assert workload.key == key == workload.spec.alias
            assert workload.kind == "scripted"

    def test_catalog_never_shadows_a_benchmark(self):
        assert not set(SCRIPTED_WORKLOADS) & set(BENCHMARKS)

    def test_fingerprints_are_distinct(self):
        prints = {w.fingerprint() for w in SCRIPTED_WORKLOADS.values()}
        prints.add(SyntheticWorkload(BENCHMARKS["hcr"]).fingerprint())
        assert len(prints) == len(SCRIPTED_WORKLOADS) + 1

    def test_frames_match_scripts(self):
        for workload in SCRIPTED_WORKLOADS.values():
            assert workload.spec.frames == sum(
                entry.frames for entry in workload.spec.script
            ) == 2000


class TestStructure:
    def test_osc_oscillates_in_uniform_bursts(self):
        script = SCRIPTED_WORKLOADS["hcr-osc"].spec.script
        assert len(script) == 40
        assert all(entry.frames == 50 for entry in script)
        assert len({entry.phase for entry in script}) == 2
        # Strictly alternating: no two adjacent segments share a phase.
        assert all(a.phase != b.phase for a, b in zip(script, script[1:]))

    def test_flip_is_one_abrupt_transition(self):
        script = SCRIPTED_WORKLOADS["hcr-flip"].spec.script
        assert len(script) == 2
        assert script[0].phase != script[1].phase

    def test_drift_raises_intra_segment_drift(self):
        base = max(phase.drift for phase in BENCHMARKS["hcr"].phases)
        drifted = SCRIPTED_WORKLOADS["hcr-drift"].spec.phases
        assert all(phase.drift > base for phase in drifted)


class TestBuild:
    @pytest.mark.parametrize("key", ["hcr-osc", "hcr-flip", "hcr-drift"])
    def test_builds_at_gate_scale(self, key):
        workload = SCRIPTED_WORKLOADS[key]
        trace = workload.build(scale=0.02)
        assert trace.frame_count == 40
        assert trace.name == key

    def test_build_is_deterministic(self):
        workload = SCRIPTED_WORKLOADS["hcr-osc"]
        first = workload.build(scale=0.02)
        second = workload.build(scale=0.02)
        assert first.to_dict() == second.to_dict()

    def test_describe_counts_segments(self):
        description = SCRIPTED_WORKLOADS["hcr-osc"].describe()
        assert "40 segments" in description

    def test_subclasses_synthetic(self):
        assert isinstance(SCRIPTED_WORKLOADS["hcr-flip"], SyntheticWorkload)
        assert type(SCRIPTED_WORKLOADS["hcr-flip"]) is ScriptedWorkload
