"""Tests for the eight Table II benchmark definitions."""

import pytest

from repro.errors import ConfigError
from repro.workloads.benchmarks import (
    BENCHMARKS,
    benchmark_aliases,
    benchmark_spec,
    make_benchmark,
)

# Table II reference rows: frames, vertex shaders, fragment shaders, type.
TABLE2 = {
    "asp": (4000, 42, 45, "3D"),
    "bbr1": (2500, 73, 62, "3D"),
    "bbr2": (4000, 66, 59, "3D"),
    "hcr": (2000, 5, 5, "2D"),
    "hwh": (4000, 30, 30, "3D"),
    "jjo": (5000, 4, 5, "2D"),
    "pvz": (5000, 4, 5, "2D"),
    "spd": (5000, 16, 26, "3D"),
}


class TestTable2Fidelity:
    def test_all_eight_present_in_order(self):
        assert benchmark_aliases() == tuple(TABLE2)

    @pytest.mark.parametrize("alias", list(TABLE2))
    def test_row_matches_paper(self, alias):
        spec = benchmark_spec(alias)
        frames, vs, fs, game_type = TABLE2[alias]
        assert spec.frames == frames
        assert spec.vertex_shader_count == vs
        assert spec.fragment_shader_count == fs
        assert spec.game_type == game_type

    @pytest.mark.parametrize("alias", list(TABLE2))
    def test_script_covers_declared_frames(self, alias):
        spec = benchmark_spec(alias)
        assert spec.script_frames == spec.frames

    def test_unique_seeds(self):
        seeds = [spec.seed for spec in BENCHMARKS.values()]
        assert len(set(seeds)) == len(seeds)

    def test_unknown_alias(self):
        with pytest.raises(ConfigError):
            benchmark_spec("doom")


class TestGeneration:
    @pytest.mark.parametrize("alias", ["bbr1", "pvz"])
    def test_scaled_generation(self, alias):
        trace = make_benchmark(alias, scale=0.02)
        expected = benchmark_spec(alias).scaled(0.02).frames
        assert trace.frame_count == expected
        assert trace.name == alias

    def test_full_scale_uses_table2_frames(self):
        trace = make_benchmark("hcr", scale=0.05)
        assert trace.frame_count == benchmark_spec("hcr").scaled(0.05).frames

    def test_shader_tables_match_spec(self):
        trace = make_benchmark("hcr", scale=0.02)
        assert len(trace.vertex_shaders) == 5
        assert len(trace.fragment_shaders) == 5

    def test_phases_repeat_for_similarity(self):
        """Scripts revisit archetypes: the premise behind frame clustering."""
        for alias in benchmark_aliases():
            spec = benchmark_spec(alias)
            names = [entry.phase for entry in spec.script]
            assert len(names) > len(set(names))


class TestScaleValidation:
    @pytest.mark.parametrize("scale", [0.0, -0.5])
    def test_non_positive_scale_is_rejected(self, scale):
        with pytest.raises(ConfigError, match="scale must be > 0"):
            make_benchmark("hcr", scale=scale)

    def test_sub_frame_scale_is_rejected(self):
        # hcr's shortest script segment is 80 frames; 0.005 rounds it to 0.
        with pytest.raises(ConfigError, match="below 1 frame"):
            make_benchmark("hcr", scale=0.005)

    def test_unknown_benchmark_lists_the_workload_registry(self):
        with pytest.raises(ConfigError, match="hcr-osc"):
            benchmark_spec("doom")
