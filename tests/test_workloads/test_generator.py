"""Tests for the synthetic trace generator."""

import numpy as np
import pytest

from repro.scene.shader import ShaderKind
from repro.workloads.generator import GameWorkloadGenerator
from repro.workloads.specs import GameSpec, PhaseSpec, ScriptEntry


def small_spec(game_type="3D", seed=7) -> GameSpec:
    phases = (
        PhaseSpec("menu", draw_calls=4, motion=0.1, shader_groups=(0,)),
        PhaseSpec("play", draw_calls=8, motion=0.8, shader_groups=(1,)),
    )
    return GameSpec(
        alias="mini", title="Mini", description="test", game_type=game_type,
        downloads_millions="1-5", frames=40,
        vertex_shader_count=6, fragment_shader_count=6,
        phases=phases,
        script=(
            ScriptEntry("menu", 10), ScriptEntry("play", 20),
            ScriptEntry("menu", 10),
        ),
        seed=seed, shader_group_count=2, mesh_pool=8, texture_pool=6,
    )


@pytest.fixture(scope="module")
def trace_3d():
    return GameWorkloadGenerator(small_spec()).generate()


@pytest.fixture(scope="module")
def trace_2d():
    return GameWorkloadGenerator(small_spec(game_type="2D")).generate()


class TestStructure:
    def test_frame_count(self, trace_3d):
        assert trace_3d.frame_count == 40

    def test_shader_table_sizes(self, trace_3d):
        assert len(trace_3d.vertex_shaders) == 6
        assert len(trace_3d.fragment_shaders) == 6

    def test_shader_kinds(self, trace_3d):
        assert all(s.kind is ShaderKind.VERTEX for s in trace_3d.vertex_shaders)
        assert all(s.kind is ShaderKind.FRAGMENT for s in trace_3d.fragment_shaders)

    def test_resource_pools(self, trace_3d):
        assert len(trace_3d.meshes) == 8
        assert len(trace_3d.textures) == 6

    def test_trace_validates(self, trace_3d):
        trace_3d.validate()  # must not raise

    def test_every_frame_has_draw_calls(self, trace_3d):
        assert all(len(f.draw_calls) >= 1 for f in trace_3d.frames)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = GameWorkloadGenerator(small_spec(seed=3)).generate()
        b = GameWorkloadGenerator(small_spec(seed=3)).generate()
        for frame_a, frame_b in zip(a.frames, b.frames):
            assert len(frame_a.draw_calls) == len(frame_b.draw_calls)
            for dc_a, dc_b in zip(frame_a.draw_calls, frame_b.draw_calls):
                assert dc_a.position == dc_b.position
                assert dc_a.scale == dc_b.scale

    def test_different_seed_different_trace(self):
        a = GameWorkloadGenerator(small_spec(seed=3)).generate()
        b = GameWorkloadGenerator(small_spec(seed=4)).generate()
        assert any(
            fa.draw_calls[0].scale != fb.draw_calls[0].scale
            for fa, fb in zip(a.frames, b.frames)
        )


class TestGameTypes:
    def test_2d_uses_orthographic_camera(self, trace_2d):
        assert trace_2d.frames[0].camera.orthographic

    def test_3d_uses_perspective_camera(self, trace_3d):
        assert not trace_3d.frames[0].camera.orthographic

    def test_2d_meshes_are_flat_quads(self, trace_2d):
        assert all(not m.closed_surface for m in trace_2d.meshes)
        assert all(m.vertex_count % 4 == 0 for m in trace_2d.meshes)

    def test_3d_meshes_are_closed(self, trace_3d):
        assert all(m.closed_surface for m in trace_3d.meshes)

    def test_vertex_shaders_never_sample_textures(self, trace_3d, trace_2d):
        for trace in (trace_3d, trace_2d):
            assert all(not s.texture_samples for s in trace.vertex_shaders)


class TestPhaseStructure:
    def test_phase_changes_shader_usage(self, trace_3d):
        """Menu and play segments draw from different shader theme groups."""
        def shader_set(frames):
            used = set()
            for frame in frames:
                for dc in frame.draw_calls:
                    used.add(("fs", dc.fragment_shader.shader_id))
                    used.add(("vs", dc.vertex_shader.shader_id))
            return used

        menu = shader_set(trace_3d.frames[:10])
        play = shader_set(trace_3d.frames[10:30])
        assert menu != play

    def test_menu_segments_similar_across_visits(self, trace_3d):
        """Both menu segments reuse the same templates."""
        first = {dc.fragment_shader.shader_id
                 for dc in trace_3d.frames[0].draw_calls}
        second = {dc.fragment_shader.shader_id
                  for dc in trace_3d.frames[35].draw_calls}
        assert first & second

    def test_smooth_frame_to_frame_motion(self, trace_3d):
        """Consecutive frames of a segment move objects only slightly."""
        deltas = []
        for a, b in zip(trace_3d.frames[12:18], trace_3d.frames[13:19]):
            if len(a.draw_calls) and len(b.draw_calls):
                pa, pb = a.draw_calls[0].position, b.draw_calls[0].position
                deltas.append(pa.distance_to(pb))
        assert max(deltas) < 5.0


class TestAddressLayout:
    def test_resources_do_not_overlap(self, trace_3d):
        ranges = [
            (m.base_address, m.base_address + m.vertex_buffer_bytes)
            for m in trace_3d.meshes
        ] + [
            (t.base_address, t.base_address + t.size_bytes)
            for t in trace_3d.textures
        ]
        ranges.sort()
        for (start_a, end_a), (start_b, _) in zip(ranges, ranges[1:]):
            assert end_a <= start_b
