"""The two-tier store, its obs counters, and process-wide resolution."""

from __future__ import annotations

import os

from repro.obs import collecting
from repro.store import (
    STORE_ENV_VAR,
    ArtifactStore,
    get_store,
    memory_store,
    set_store,
    store_scope,
)

FP = "ef" + "0" * 62


def _counters(collector) -> dict[str, float]:
    return dict(collector.counters)


class TestTiering:
    def test_memory_hit_returns_identical_object(self, tmp_path):
        store = ArtifactStore(tmp_path)
        obj = {"payload": 1}
        store.put("plan", FP, obj, encode=lambda o: o)
        assert store.get("plan", FP, decode=dict) is obj

    def test_disk_hit_after_memory_clear_decodes_equal_object(self, tmp_path):
        store = ArtifactStore(tmp_path)
        obj = {"payload": [1, 2]}
        store.put("plan", FP, obj, encode=lambda o: o)
        store.clear_memory()
        restored = store.get("plan", FP, decode=lambda payload: dict(payload))
        assert restored == obj and restored is not obj
        # The disk hit was promoted: next access is a memory hit.
        assert store.get("plan", FP, decode=dict) is restored

    def test_memory_only_kind_never_touches_disk(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("evaluation", FP, object())  # no encode hook
        assert store.disk.stats()["entries"] == 0
        store.clear_memory()
        assert store.get("evaluation", FP) is None

    def test_memory_store_has_no_disk_tier(self):
        store = memory_store()
        assert store.root is None
        store.put("plan", FP, {"a": 1}, encode=dict)  # encode is ignored
        assert store.get("plan", FP, decode=dict) == {"a": 1}

    def test_clear_drops_both_tiers(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("plan", FP, {"a": 1}, encode=dict)
        assert store.clear() == 1
        assert store.get("plan", FP, decode=dict) is None

    def test_concurrent_writers_agree(self, tmp_path):
        # Two stores sharing one root model two processes: either write
        # wins atomically and the reader sees a complete artifact.
        first = ArtifactStore(tmp_path)
        second = ArtifactStore(tmp_path)
        first.put("plan", FP, {"a": 1}, encode=dict)
        second.put("plan", FP, {"a": 1}, encode=dict)
        second.clear_memory()
        assert second.get("plan", FP, decode=dict) == {"a": 1}


class TestCounters:
    def test_hit_miss_write_and_byte_counters(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with collecting() as collector:
            assert store.get("plan", FP, decode=dict) is None  # miss
            store.put("plan", FP, {"a": 1}, encode=dict)       # write
            store.get("plan", FP, decode=dict)                 # memory hit
            store.clear_memory()
            store.get("plan", FP, decode=dict)                 # disk hit
        totals = _counters(collector)
        assert totals["store.misses"] == 1
        assert totals["store.writes"] == 1
        assert totals["store.hits.memory"] == 1
        assert totals["store.hits.disk"] == 1
        assert totals["store.bytes_written"] > 0
        assert totals["store.bytes_read"] > 0

    def test_corruption_is_counted(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("plan", FP, {"a": 1}, encode=dict)
        store.clear_memory()
        target = store.disk.path("plan", FP)
        target.write_text("not json")
        with collecting() as collector:
            assert store.get("plan", FP, decode=dict) is None
        totals = _counters(collector)
        assert totals["store.corrupt"] == 1
        assert totals["store.misses"] == 1

    def test_evictions_are_counted(self, tmp_path):
        store = ArtifactStore(tmp_path, memory_entries=1)
        with collecting() as collector:
            store.put("plan", "aa" + "0" * 62, {"a": 1})
            store.put("plan", "bb" + "0" * 62, {"b": 2})
        assert _counters(collector)["store.evictions"] == 1


class TestProcessWideStore:
    def test_env_var_selects_the_root(self, tmp_path):
        previous = os.environ.get(STORE_ENV_VAR)
        os.environ[STORE_ENV_VAR] = str(tmp_path / "custom")
        set_store(None)
        try:
            assert get_store().root == tmp_path / "custom"
        finally:
            if previous is None:
                os.environ.pop(STORE_ENV_VAR, None)
            else:
                os.environ[STORE_ENV_VAR] = previous
            set_store(None)

    def test_disable_value_selects_memory_only(self):
        previous = os.environ.get(STORE_ENV_VAR)
        os.environ[STORE_ENV_VAR] = "off"
        set_store(None)
        try:
            assert get_store().root is None
        finally:
            if previous is None:
                os.environ.pop(STORE_ENV_VAR, None)
            else:
                os.environ[STORE_ENV_VAR] = previous
            set_store(None)

    def test_store_scope_swaps_and_restores(self):
        outer = get_store()
        scoped = memory_store()
        with store_scope(scoped):
            assert get_store() is scoped
        assert get_store() is outer

    def test_store_scope_restores_on_error(self):
        outer = get_store()
        try:
            with store_scope(memory_store()):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert get_store() is outer
