"""The bounded LRU memory tier."""

from __future__ import annotations

import pytest

from repro.errors import StoreError
from repro.store import MemoryTier


class TestMemoryTier:
    def test_round_trip_returns_identical_object(self):
        tier = MemoryTier(4)
        payload = {"x": 1}
        tier.put("k", "aa", payload)
        assert tier.get("k", "aa") is payload

    def test_miss_returns_none(self):
        assert MemoryTier(4).get("k", "aa") is None

    def test_capacity_is_enforced(self):
        tier = MemoryTier(2)
        for index in range(5):
            tier.put("k", f"fp{index}", index)
        assert len(tier) == 2
        assert tier.evictions == 3

    def test_eviction_is_least_recently_used(self):
        tier = MemoryTier(2)
        tier.put("k", "a", 1)
        tier.put("k", "b", 2)
        tier.get("k", "a")  # renew a; b is now LRU
        tier.put("k", "c", 3)
        assert tier.get("k", "a") == 1
        assert tier.get("k", "b") is None
        assert tier.get("k", "c") == 3

    def test_put_returns_eviction_count(self):
        tier = MemoryTier(1)
        assert tier.put("k", "a", 1) == 0
        assert tier.put("k", "b", 2) == 1

    def test_overwrite_same_key_does_not_grow(self):
        tier = MemoryTier(2)
        tier.put("k", "a", 1)
        tier.put("k", "a", 2)
        assert len(tier) == 1
        assert tier.get("k", "a") == 2

    def test_kinds_do_not_collide(self):
        tier = MemoryTier(4)
        tier.put("plan", "aa", "p")
        tier.put("trace", "aa", "t")
        assert tier.get("plan", "aa") == "p"
        assert tier.get("trace", "aa") == "t"

    def test_clear_drops_entries(self):
        tier = MemoryTier(4)
        tier.put("k", "a", 1)
        tier.clear()
        assert len(tier) == 0
        assert tier.get("k", "a") is None

    def test_none_and_bad_capacity_rejected(self):
        with pytest.raises(StoreError):
            MemoryTier(0)
        with pytest.raises(StoreError):
            MemoryTier(4).put("k", "a", None)
