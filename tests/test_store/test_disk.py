"""The persistent disk tier: atomicity, corruption handling, maintenance."""

from __future__ import annotations

import json

import pytest

from repro.errors import StoreError
from repro.store import STORE_VERSION, DiskTier

FP = "ab" + "0" * 62


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        tier = DiskTier(tmp_path)
        payload = {"cycles": 1.5, "ids": [1, 2, 3]}
        written = tier.write("ground_truth", FP, payload)
        loaded = tier.read("ground_truth", FP)
        assert loaded is not None
        restored, nbytes = loaded
        assert restored == payload
        assert nbytes == written

    def test_layout_shards_by_fingerprint_prefix(self, tmp_path):
        tier = DiskTier(tmp_path)
        tier.write("plan", FP, {})
        expected = tmp_path / f"v{STORE_VERSION}" / "plan" / "ab" / f"{FP}.json"
        assert expected.is_file()

    def test_missing_artifact_is_a_miss(self, tmp_path):
        assert DiskTier(tmp_path).read("plan", FP) is None

    def test_no_stray_tmp_files_after_write(self, tmp_path):
        tier = DiskTier(tmp_path)
        tier.write("plan", FP, {"a": 1})
        assert list(tmp_path.rglob("*.tmp")) == []

    def test_float_payloads_round_trip_exactly(self, tmp_path):
        tier = DiskTier(tmp_path)
        value = 0.1 + 0.2  # not representable prettily; repr must survive
        tier.write("estimate", FP, {"v": value})
        restored, _ = tier.read("estimate", FP)
        assert restored["v"] == value

    def test_invalid_kind_and_fingerprint_rejected(self, tmp_path):
        tier = DiskTier(tmp_path)
        with pytest.raises(StoreError):
            tier.path("../evil", FP)
        with pytest.raises(StoreError):
            tier.path("plan", "XYZ")


class TestCorruption:
    def _target(self, tier: DiskTier):
        return tier.path("plan", FP)

    def test_truncated_file_is_dropped_and_missed(self, tmp_path):
        tier = DiskTier(tmp_path)
        tier.write("plan", FP, {"a": 1})
        target = self._target(tier)
        target.write_text(target.read_text()[:20])
        assert tier.read("plan", FP) is None
        assert not target.exists()
        assert tier.corrupt_dropped == 1

    def test_bit_flip_in_payload_is_detected(self, tmp_path):
        tier = DiskTier(tmp_path)
        tier.write("plan", FP, {"a": 1})
        target = self._target(tier)
        envelope = json.loads(target.read_text())
        envelope["payload"]["a"] = 2  # silently altered artifact
        target.write_text(json.dumps(envelope))
        assert tier.read("plan", FP) is None
        assert not target.exists()

    def test_foreign_fingerprint_is_rejected(self, tmp_path):
        tier = DiskTier(tmp_path)
        other = "cd" + "0" * 62
        tier.write("plan", other, {"a": 1})
        # Simulate a mis-filed artifact: copy it under the wrong address.
        target = self._target(tier)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(tier.path("plan", other).read_text())
        assert tier.read("plan", FP) is None


class TestMaintenance:
    def test_stats_counts_entries_and_bytes_per_kind(self, tmp_path):
        tier = DiskTier(tmp_path)
        tier.write("plan", FP, {"a": 1})
        tier.write("trace", FP, {"b": [1, 2]})
        stats = tier.stats()
        assert stats["entries"] == 2
        assert stats["bytes"] > 0
        assert set(stats["kinds"]) == {"plan", "trace"}
        assert stats["kinds"]["plan"]["entries"] == 1

    def test_clear_removes_everything(self, tmp_path):
        tier = DiskTier(tmp_path)
        tier.write("plan", FP, {"a": 1})
        assert tier.clear() == 1
        assert tier.stats()["entries"] == 0

    def test_gc_removes_stray_tmp_and_old_versions(self, tmp_path):
        tier = DiskTier(tmp_path)
        tier.write("plan", FP, {"a": 1})
        (tmp_path / f"v{STORE_VERSION}" / "plan" / "ab" / "crash.tmp").write_text("x")
        old = tmp_path / "v0" / "plan"
        old.mkdir(parents=True)
        (old / "stale.json").write_text("{}")
        outcome = tier.gc()
        assert outcome["removed_tmp"] == 1
        assert outcome["removed_old_versions"] == 1
        assert tier.read("plan", FP) is not None  # current data untouched

    def test_gc_trims_to_max_bytes_oldest_first(self, tmp_path):
        import os

        tier = DiskTier(tmp_path)
        fps = [f"{i:02x}" + "0" * 62 for i in range(3)]
        for index, fp in enumerate(fps):
            tier.write("plan", fp, {"i": index})
            # Deterministic, strictly increasing mtimes.
            os.utime(tier.path("plan", fp), (1000 + index, 1000 + index))
        keep = tier.path("plan", fps[2]).stat().st_size
        outcome = tier.gc(max_bytes=keep)
        assert outcome["removed_artifacts"] == 2
        assert tier.read("plan", fps[2]) is not None
        assert tier.read("plan", fps[0]) is None

    def test_gc_rejects_negative_budget(self, tmp_path):
        with pytest.raises(StoreError):
            DiskTier(tmp_path).gc(max_bytes=-1)
