"""Fingerprints: canonical, stable, sensitive to every input."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import pytest

from repro.core.sampler import MEGsimOptions
from repro.errors import StoreError
from repro.gpu.config import GPUConfig, default_config
from repro.store import canonical_json, fingerprint, jsonable


class TestJsonable:
    def test_scalars_pass_through(self):
        assert jsonable(None) is None
        assert jsonable(True) is True
        assert jsonable(3) == 3
        assert jsonable(0.25) == 0.25
        assert jsonable("x") == "x"

    def test_tuples_become_lists(self):
        assert jsonable((1, (2, 3))) == [1, [2, 3]]

    def test_dataclasses_flatten_to_field_dicts(self):
        @dataclass(frozen=True)
        class Point:
            x: int
            y: tuple

        assert jsonable(Point(1, (2,))) == {"x": 1, "y": [2]}

    def test_numpy_array_records_dtype_and_shape(self):
        payload = jsonable(np.arange(4, dtype=np.int64).reshape(2, 2))
        assert payload == {
            "__ndarray__": [[0, 1], [2, 3]],
            "dtype": "int64",
            "shape": [2, 2],
        }

    def test_numpy_scalars_become_python(self):
        assert jsonable(np.int64(7)) == 7
        assert jsonable(np.float64(0.5)) == 0.5

    def test_unknown_types_are_rejected(self):
        with pytest.raises(StoreError):
            jsonable(object())

    def test_non_string_keys_are_rejected(self):
        with pytest.raises(StoreError):
            jsonable({1: "a"})


class TestFingerprint:
    def test_deterministic_across_calls(self):
        value = {"alias": "hcr", "scale": 0.5, "opts": MEGsimOptions()}
        assert fingerprint(value) == fingerprint(value)

    def test_key_order_is_irrelevant(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_value_changes_change_the_digest(self):
        base = fingerprint({"alias": "hcr", "scale": 0.5})
        assert fingerprint({"alias": "hcr", "scale": 0.25}) != base
        assert fingerprint({"alias": "asp", "scale": 0.5}) != base

    def test_option_changes_change_the_digest(self):
        base = fingerprint(MEGsimOptions())
        assert fingerprint(MEGsimOptions(seed=1)) != base
        assert fingerprint(MEGsimOptions(threshold=0.9)) != base

    def test_config_none_equals_explicit_default(self):
        # PipelineRequest resolves None to default_config(); the two
        # spellings must share every artifact.
        assert fingerprint(default_config()) == fingerprint(GPUConfig())

    def test_config_changes_change_the_digest(self):
        assert fingerprint(GPUConfig(rendering_mode="imr")) != fingerprint(
            GPUConfig()
        )

    def test_canonical_json_is_compact_and_sorted(self):
        assert canonical_json({"b": (1,), "a": 2}) == '{"a":2,"b":[1]}'
