"""The replay round trip: export a synthetic benchmark, replay the
capture through the pipeline, and get the synthetic run's analysis back.

This is the ISSUE's acceptance test for the replay family: the capture
carries everything the methodology consumes, so clustering a replayed
capture recovers the synthetic run's phase structure exactly (rand
index 1.0), and a capture's fingerprints are stable run to run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.runner import evaluate_benchmark
from repro.core import adjusted_rand_index
from repro.core.sampler import SamplingPlan
from repro.pipeline import PipelineRequest, stage_fingerprints
from repro.store import ArtifactStore, store_scope
from repro.workloads import export_workload_file, make_benchmark
from repro.workloads.registry import _DYNAMIC, register_workload_file

SCALE = 0.05


@pytest.fixture(autouse=True)
def _isolated_dynamic_table():
    saved = dict(_DYNAMIC)
    yield
    _DYNAMIC.clear()
    _DYNAMIC.update(saved)


@pytest.fixture(scope="module")
def capture(tmp_path_factory):
    path = tmp_path_factory.mktemp("capture") / "hcr.jsonl"
    export_workload_file(make_benchmark("hcr", scale=SCALE), path)
    return path


def _labels(plan: SamplingPlan) -> np.ndarray:
    labels = np.zeros(plan.total_frames, dtype=np.int64)
    for row, cluster in enumerate(plan.clusters):
        labels[list(cluster.members)] = row
    return labels


def test_replayed_capture_recovers_the_synthetic_plan(capture, tmp_path):
    ref = register_workload_file(str(capture))
    with store_scope(ArtifactStore(tmp_path / "store")):
        synthetic = evaluate_benchmark("hcr", scale=SCALE)
        replayed = evaluate_benchmark(ref.name)

    assert replayed.trace.frame_count == synthetic.trace.frame_count
    assert replayed.plan.total_frames == synthetic.plan.total_frames
    # The capture is lossless, so the feature matrices — and therefore
    # the whole BIC search — coincide: identical cluster assignment.
    assert adjusted_rand_index(
        _labels(synthetic.plan), _labels(replayed.plan)
    ) == 1.0
    assert (
        replayed.plan.representative_frames
        == synthetic.plan.representative_frames
    )
    # End to end, the replayed estimate is the synthetic estimate.
    for metric, error in replayed.relative_errors().items():
        assert error == pytest.approx(
            synthetic.relative_errors()[metric], abs=1e-12
        )


def test_replay_fingerprints_are_stable_across_runs(capture):
    first = stage_fingerprints(PipelineRequest.create(
        register_workload_file(str(capture)).name
    ))
    _DYNAMIC.clear()
    second = stage_fingerprints(PipelineRequest.create(
        register_workload_file(str(capture)).name
    ))
    assert first == second


def test_replay_and_synthetic_address_different_artifacts(capture):
    ref = register_workload_file(str(capture))
    replay = stage_fingerprints(PipelineRequest.create(ref.name))
    synthetic = stage_fingerprints(
        PipelineRequest.create("hcr", scale=SCALE)
    )
    assert replay["trace"] != synthetic["trace"]
