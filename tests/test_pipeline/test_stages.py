"""Stage graph structure and fingerprint algebra."""

from __future__ import annotations

import pytest

from repro.core.sampler import MEGsimOptions
from repro.errors import ConfigError
from repro.gpu.config import GPUConfig
from repro.pipeline import (
    STAGES,
    PipelineRequest,
    evaluation_fingerprint,
    stage_fingerprints,
    validate_stages,
)

REQUEST = PipelineRequest.create("hcr", scale=0.02)


class TestGraph:
    def test_declared_order_is_a_valid_topological_order(self):
        validate_stages(STAGES)

    def test_expected_stage_names(self):
        assert [s.name for s in STAGES] == [
            "trace",
            "profile",
            "plan",
            "ground_truth",
            "representatives",
            "estimate",
        ]

    def test_duplicate_names_rejected(self):
        twice = STAGES + (STAGES[0],)
        with pytest.raises(ConfigError):
            validate_stages(twice)

    def test_forward_reference_rejected(self):
        backwards = tuple(reversed(STAGES))
        with pytest.raises(ConfigError):
            validate_stages(backwards)


class TestFingerprints:
    def test_every_stage_gets_a_distinct_digest(self):
        fps = stage_fingerprints(REQUEST)
        assert set(fps) == {s.name for s in STAGES}
        assert len(set(fps.values())) == len(fps)

    def test_deterministic_across_calls(self):
        again = PipelineRequest.create("hcr", scale=0.02)
        assert stage_fingerprints(REQUEST) == stage_fingerprints(again)

    def test_alias_change_invalidates_everything(self):
        base = stage_fingerprints(REQUEST)
        other = stage_fingerprints(PipelineRequest.create("asp", scale=0.02))
        assert all(other[name] != base[name] for name in base)

    def test_option_change_leaves_trace_and_profile_valid(self):
        # Sampler options feed the plan stage; upstream artifacts are
        # reusable, everything downstream of the plan is not.
        base = stage_fingerprints(REQUEST)
        tuned = stage_fingerprints(
            PipelineRequest.create(
                "hcr", scale=0.02, options=MEGsimOptions(threshold=0.9)
            )
        )
        assert tuned["trace"] == base["trace"]
        assert tuned["profile"] == base["profile"]
        assert tuned["plan"] != base["plan"]
        assert tuned["representatives"] != base["representatives"]
        assert tuned["estimate"] != base["estimate"]
        # Ground truth ignores the sampling plan entirely.
        assert tuned["ground_truth"] == base["ground_truth"]

    def test_config_change_leaves_trace_valid_only(self):
        base = stage_fingerprints(REQUEST)
        tweaked = stage_fingerprints(
            PipelineRequest.create(
                "hcr", scale=0.02, config=GPUConfig(rendering_mode="imr")
            )
        )
        assert tweaked["trace"] == base["trace"]
        assert tweaked["profile"] != base["profile"]
        assert tweaked["ground_truth"] != base["ground_truth"]

    def test_evaluation_fingerprint_tracks_estimate(self):
        fps = stage_fingerprints(REQUEST)
        assert evaluation_fingerprint(REQUEST, fps) == evaluation_fingerprint(
            REQUEST
        )
        other = PipelineRequest.create("asp", scale=0.02)
        assert evaluation_fingerprint(other) != evaluation_fingerprint(REQUEST)


class TestRequest:
    def test_none_defaults_resolve_to_canonical_values(self):
        explicit = PipelineRequest.create(
            "hcr", scale=0.02, options=MEGsimOptions(), config=GPUConfig()
        )
        assert stage_fingerprints(explicit) == stage_fingerprints(REQUEST)

    def test_scale_is_normalised_to_float(self):
        assert PipelineRequest.create("hcr", scale=1).scale == 1.0
