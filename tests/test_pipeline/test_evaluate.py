"""End-to-end store behaviour of :func:`evaluate_benchmark`.

These are the ISSUE's acceptance tests: a store hit must reproduce the
cold computation exactly, a corrupted artifact must be recomputed rather
than trusted, and a warm store must eliminate all simulation work.
"""

from __future__ import annotations

import pytest

from repro.analysis.runner import BenchmarkEvaluation, evaluate_benchmark
from repro.gpu.stats import KEY_METRICS
from repro.obs import collecting
from repro.pipeline import STAGES, PipelineRequest, stage_fingerprints
from repro.store import ArtifactStore, store_scope

SCALE = 0.02


def _evaluate(alias: str) -> BenchmarkEvaluation:
    return evaluate_benchmark(alias, scale=SCALE)


def _assert_numerically_identical(
    cold: BenchmarkEvaluation,
    warm: BenchmarkEvaluation,
    *,
    check_speedup: bool = True,
) -> None:
    assert warm.plan.total_frames == cold.plan.total_frames
    assert warm.plan.representative_frames == cold.plan.representative_frames
    assert warm.plan.reduction_factor == cold.plan.reduction_factor
    for metric in KEY_METRICS:
        assert getattr(warm.estimate, metric) == getattr(cold.estimate, metric)
        assert getattr(warm.totals, metric) == getattr(cold.totals, metric)
    assert warm.relative_errors() == cold.relative_errors()
    if check_speedup:
        assert warm.time_speedup == cold.time_speedup


@pytest.mark.parametrize("alias", ["hcr", "asp"])
def test_store_hit_reproduces_cold_computation(alias, tmp_path):
    store = ArtifactStore(tmp_path / "store")
    with store_scope(store):
        cold = _evaluate(alias)
        # Drop every live object; the rerun must decode from disk.
        store.clear_memory()
        with collecting() as collector:
            warm = _evaluate(alias)
    assert warm is not cold
    _assert_numerically_identical(cold, warm)
    counters = dict(collector.counters)
    for stage in STAGES:
        assert f"pipeline.hits.{stage.name}" in counters
        assert f"pipeline.computed.{stage.name}" not in counters


def test_warm_store_does_zero_simulation_work(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    with store_scope(store):
        _evaluate("hcr")
        store.clear_memory()
        with collecting() as collector:
            _evaluate("hcr")
    counters = dict(collector.counters)
    # Zero trace generation, zero functional profiling, zero
    # cycle-accurate simulation: every stage came out of the store.
    assert "cycle.frames_simulated" not in counters
    assert "cycle.warmup_frames" not in counters
    assert "functional.frames_profiled" not in counters
    assert not any(name.startswith("pipeline.computed.") for name in counters)
    assert counters["store.hits.disk"] >= len(STAGES)


def test_memory_tier_hit_returns_identical_object(tmp_path):
    with store_scope(ArtifactStore(tmp_path / "store")):
        first = _evaluate("hcr")
        with collecting() as collector:
            second = _evaluate("hcr")
    assert second is first
    counters = dict(collector.counters)
    assert counters["store.hits.memory"] == 1
    # The assembled evaluation short-circuits the whole pipeline.
    assert not any(name.startswith("pipeline.") for name in counters)


def test_use_cache_false_bypasses_the_store(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    with store_scope(store):
        with collecting() as collector:
            cold = evaluate_benchmark("hcr", scale=SCALE, use_cache=False)
    counters = dict(collector.counters)
    assert "store.misses" not in counters
    assert "store.writes" not in counters
    assert store.disk.stats()["entries"] == 0
    assert cold.plan.total_frames > 0


def test_corrupted_artifact_is_recomputed_not_trusted(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    with store_scope(store):
        cold = _evaluate("hcr")
        store.clear_memory()
        # Flip bits in the persisted ground truth.
        request = PipelineRequest.create("hcr", scale=SCALE)
        fp = stage_fingerprints(request)["ground_truth"]
        target = store.disk.path("ground_truth", fp)
        assert target.is_file()
        target.write_text(target.read_text().replace("payload", "paylaod", 1))
        with collecting() as collector:
            warm = _evaluate("hcr")
    counters = dict(collector.counters)
    assert counters["store.corrupt"] == 1
    assert counters["pipeline.computed.ground_truth"] == 1
    # Only the damaged stage was redone; its inputs still hit.
    assert counters["pipeline.hits.trace"] == 1
    assert counters["cycle.frames_simulated"] > 0
    # The recomputed ground truth re-measures its own wall clock, so
    # time_speedup is the one value allowed to differ.
    _assert_numerically_identical(cold, warm, check_speedup=False)
