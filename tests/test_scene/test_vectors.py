"""Tests for the Vec3 math primitive."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.scene.vectors import Vec3

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
vectors = st.builds(Vec3, finite, finite, finite)


class TestBasicOps:
    def test_add(self):
        assert Vec3(1, 2, 3) + Vec3(4, 5, 6) == Vec3(5, 7, 9)

    def test_sub(self):
        assert Vec3(4, 5, 6) - Vec3(1, 2, 3) == Vec3(3, 3, 3)

    def test_scalar_multiply(self):
        assert Vec3(1, -2, 3) * 2 == Vec3(2, -4, 6)

    def test_rmul(self):
        assert 2 * Vec3(1, 2, 3) == Vec3(2, 4, 6)

    def test_negation(self):
        assert -Vec3(1, -2, 3) == Vec3(-1, 2, -3)

    def test_dot(self):
        assert Vec3(1, 2, 3).dot(Vec3(4, -5, 6)) == 4 - 10 + 18

    def test_cross_of_axes(self):
        assert Vec3(1, 0, 0).cross(Vec3(0, 1, 0)) == Vec3(0, 0, 1)

    def test_length(self):
        assert Vec3(3, 4, 0).length() == pytest.approx(5.0)

    def test_distance(self):
        assert Vec3(1, 1, 1).distance_to(Vec3(1, 1, 4)) == pytest.approx(3.0)

    def test_zero(self):
        assert Vec3.zero() == Vec3(0.0, 0.0, 0.0)

    def test_as_tuple(self):
        assert Vec3(1.5, 2.5, 3.5).as_tuple() == (1.5, 2.5, 3.5)

    def test_immutable(self):
        with pytest.raises(AttributeError):
            Vec3(1, 2, 3).x = 5  # type: ignore[misc]


class TestNormalize:
    def test_unit_length(self):
        v = Vec3(3, 4, 12).normalized()
        assert v.length() == pytest.approx(1.0)

    def test_zero_vector_raises(self):
        # GeometryError derives from both ReproError and the historical
        # ZeroDivisionError, so either catch works.
        with pytest.raises(ZeroDivisionError):
            Vec3.zero().normalized()

    def test_zero_vector_raises_repro_error(self):
        from repro.errors import GeometryError, ReproError

        with pytest.raises(GeometryError):
            Vec3.zero().normalized()
        with pytest.raises(ReproError):
            Vec3.zero().normalized()


class TestLerp:
    def test_endpoints(self):
        a, b = Vec3(0, 0, 0), Vec3(2, 4, 6)
        assert a.lerp(b, 0.0) == a
        assert a.lerp(b, 1.0) == b

    def test_midpoint(self):
        assert Vec3(0, 0, 0).lerp(Vec3(2, 4, 6), 0.5) == Vec3(1, 2, 3)


class TestProperties:
    @given(vectors, vectors)
    def test_addition_commutes(self, a, b):
        assert (a + b).as_tuple() == pytest.approx((b + a).as_tuple())

    @given(vectors, vectors)
    def test_dot_symmetric(self, a, b):
        assert a.dot(b) == pytest.approx(b.dot(a))

    @given(vectors)
    def test_cross_with_self_is_zero(self, v):
        c = v.cross(v)
        assert c.length() == pytest.approx(0.0, abs=1e-3)

    @given(vectors, vectors)
    def test_cross_orthogonal_to_operands(self, a, b):
        c = a.cross(b)
        scale = max(a.length() * b.length(), 1.0)
        assert abs(c.dot(a)) / scale == pytest.approx(0.0, abs=1e-6)
        assert abs(c.dot(b)) / scale == pytest.approx(0.0, abs=1e-6)

    @given(vectors)
    def test_length_nonnegative(self, v):
        assert v.length() >= 0.0

    @given(vectors, vectors)
    def test_triangle_inequality(self, a, b):
        assert (a + b).length() <= a.length() + b.length() + 1e-6
