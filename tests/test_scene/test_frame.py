"""Tests for cameras (projection) and frames."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TraceError
from repro.scene.frame import Camera, Frame
from repro.scene.vectors import Vec3


class TestPerspectiveProjection:
    def test_centered_object_projects_to_screen_center(self):
        cam = Camera()
        footprint = cam.project(Vec3(0, 0, -10), radius=1.0, aspect=2.0)
        assert footprint is not None
        cx, cy, r = footprint
        assert cx == pytest.approx(0.5)
        assert cy == pytest.approx(0.5)
        assert r > 0

    def test_radius_shrinks_with_distance(self):
        cam = Camera()
        near = cam.project(Vec3(0, 0, -5), 1.0, aspect=2.0)[2]
        far = cam.project(Vec3(0, 0, -20), 1.0, aspect=2.0)[2]
        assert near == pytest.approx(4 * far, rel=1e-6)

    def test_behind_camera_returns_none(self):
        cam = Camera()
        assert cam.project(Vec3(0, 0, 5), 1.0, aspect=2.0) is None

    def test_sphere_straddling_near_plane_survives(self):
        cam = Camera(near=0.1)
        assert cam.project(Vec3(0, 0, 1.0), radius=5.0, aspect=2.0) is not None

    def test_lateral_offset_moves_center(self):
        cam = Camera()
        cx, cy, _ = cam.project(Vec3(3, 2, -10), 1.0, aspect=2.0)
        assert cx > 0.5
        assert cy > 0.5

    def test_fov_controls_size(self):
        wide = Camera(fov_y_degrees=90.0).project(Vec3(0, 0, -10), 1.0, 2.0)[2]
        narrow = Camera(fov_y_degrees=30.0).project(Vec3(0, 0, -10), 1.0, 2.0)[2]
        assert narrow > wide

    def test_zero_radius_rejected(self):
        with pytest.raises(TraceError):
            Camera().project(Vec3(0, 0, -10), 0.0, aspect=2.0)

    def test_bad_aspect_rejected(self):
        with pytest.raises(TraceError):
            Camera().project(Vec3(0, 0, -10), 1.0, aspect=0.0)

    @given(
        depth=st.floats(min_value=1.0, max_value=1000.0),
        radius=st.floats(min_value=0.01, max_value=100.0),
    )
    def test_projected_radius_scales_linearly_with_world_radius(
        self, depth, radius
    ):
        cam = Camera()
        base = cam.project(Vec3(0, 0, -depth), radius, aspect=2.0)[2]
        doubled = cam.project(Vec3(0, 0, -depth), 2 * radius, aspect=2.0)[2]
        assert doubled == pytest.approx(2 * base, rel=1e-9)


class TestOrthographicProjection:
    def test_depth_independent(self):
        cam = Camera(orthographic=True, ortho_height=10.0)
        near = cam.project(Vec3(0, 0, -1), 1.0, aspect=2.0)
        far = cam.project(Vec3(0, 0, -100), 1.0, aspect=2.0)
        assert near[2] == pytest.approx(far[2])

    def test_radius_fraction(self):
        cam = Camera(orthographic=True, ortho_height=10.0)
        assert cam.project(Vec3(0, 0, 0), 2.5, aspect=2.0)[2] == pytest.approx(0.25)

    def test_offsets_scale_with_view_size(self):
        cam = Camera(orthographic=True, ortho_height=10.0)
        cx, cy, _ = cam.project(Vec3(10.0, 5.0, 0), 1.0, aspect=2.0)
        assert cx == pytest.approx(0.5 + 10.0 / 20.0)
        assert cy == pytest.approx(0.5 + 5.0 / 10.0)


class TestCameraValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"fov_y_degrees": 0.5},
            {"fov_y_degrees": 180.0},
            {"ortho_height": 0.0},
            {"near": 0.0},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(TraceError):
            Camera(**kwargs)

    def test_projected_radius_fraction_compat(self):
        cam = Camera()
        assert cam.projected_radius_fraction(Vec3(0, 0, -10), 1.0) > 0
        assert cam.projected_radius_fraction(Vec3(0, 0, 10), 1.0) == 0.0


class TestFrame:
    def test_totals(self, draw_call):
        frame = Frame(frame_id=0, camera=Camera(), draw_calls=(draw_call, draw_call))
        assert frame.total_vertices == 2 * draw_call.submitted_vertices
        assert frame.total_primitives == 2 * draw_call.submitted_primitives

    def test_negative_id_rejected(self, draw_call):
        with pytest.raises(TraceError):
            Frame(frame_id=-1, camera=Camera(), draw_calls=(draw_call,))

    def test_empty_frame_allowed(self):
        frame = Frame(frame_id=0, camera=Camera(), draw_calls=())
        assert frame.total_vertices == 0
