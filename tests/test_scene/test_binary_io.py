"""Tests for the binary (.npz) trace format."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.scene.binary_io import load_trace_npz, save_trace_npz
from repro.workloads.benchmarks import make_benchmark


class TestRoundTrip:
    def test_tiny_trace(self, tiny_trace, tmp_path):
        path = tmp_path / "trace.npz"
        save_trace_npz(tiny_trace, path)
        rebuilt = load_trace_npz(path)
        assert rebuilt.name == tiny_trace.name
        assert rebuilt.frame_count == tiny_trace.frame_count
        assert rebuilt.vertex_shaders == tiny_trace.vertex_shaders
        assert rebuilt.fragment_shaders == tiny_trace.fragment_shaders
        assert rebuilt.meshes == tiny_trace.meshes
        assert rebuilt.textures == tiny_trace.textures

    def test_draw_calls_identical(self, tiny_trace, tmp_path):
        path = tmp_path / "trace.npz"
        save_trace_npz(tiny_trace, path)
        rebuilt = load_trace_npz(path)
        for original, restored in zip(tiny_trace.frames, rebuilt.frames):
            assert original.camera == restored.camera
            for dc_a, dc_b in zip(original.draw_calls, restored.draw_calls):
                assert dc_a.position == dc_b.position
                assert dc_a.scale == dc_b.scale
                assert dc_a.overdraw == dc_b.overdraw
                assert dc_a.texture_ids == dc_b.texture_ids
                assert dc_a.opaque == dc_b.opaque
                assert dc_a.depth_layer == dc_b.depth_layer
                assert dc_a.instance_count == dc_b.instance_count

    def test_generated_benchmark_round_trips(self, tmp_path):
        trace = make_benchmark("hcr", scale=0.02)
        path = tmp_path / "hcr.npz"
        save_trace_npz(trace, path)
        rebuilt = load_trace_npz(path)
        assert rebuilt.frame_count == trace.frame_count
        # Simulation results must be bit-identical on the rebuilt trace.
        from repro.gpu.functional_sim import FunctionalSimulator

        sim = FunctionalSimulator()
        original = sim.profile(trace)
        restored = sim.profile(rebuilt)
        for a, b in zip(original.profiles, restored.profiles):
            assert np.array_equal(a.vs_executions, b.vs_executions)
            assert np.array_equal(a.fs_executions, b.fs_executions)
            assert a.primitives == b.primitives

    def test_smaller_than_json(self, tmp_path):
        trace = make_benchmark("hcr", scale=0.02)
        json_path = tmp_path / "t.json"
        npz_path = tmp_path / "t.npz"
        trace.save(json_path)
        save_trace_npz(trace, npz_path)
        assert npz_path.stat().st_size < json_path.stat().st_size / 3


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            load_trace_npz(tmp_path / "missing.npz")

    def test_wrong_version(self, tiny_trace, tmp_path):
        path = tmp_path / "trace.npz"
        save_trace_npz(tiny_trace, path)
        data = dict(np.load(path, allow_pickle=False))
        data["format_version"] = np.array([999], dtype=np.int64)
        with open(path, "wb") as stream:
            np.savez_compressed(stream, **data)
        with pytest.raises(TraceError):
            load_trace_npz(path)
