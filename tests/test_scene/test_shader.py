"""Tests for shader program descriptors and texture weighting."""

import pytest

from repro.errors import TraceError
from repro.scene.shader import (
    FilterMode,
    ShaderKind,
    ShaderProgram,
    TextureSample,
)


class TestFilterMode:
    def test_paper_weights(self):
        """Section III-B: linear=2, bilinear=4, trilinear=8 accesses."""
        assert FilterMode.LINEAR.memory_accesses == 2
        assert FilterMode.BILINEAR.memory_accesses == 4
        assert FilterMode.TRILINEAR.memory_accesses == 8

    def test_nearest_single_access(self):
        assert FilterMode.NEAREST.memory_accesses == 1


class TestTextureSample:
    def test_valid(self):
        sample = TextureSample(texture_slot=2, filter_mode=FilterMode.LINEAR)
        assert sample.texture_slot == 2

    def test_negative_slot_rejected(self):
        with pytest.raises(TraceError):
            TextureSample(texture_slot=-1, filter_mode=FilterMode.LINEAR)


class TestShaderProgram:
    def test_instruction_count_counts_texture_ops_once(self):
        shader = ShaderProgram(
            shader_id=0,
            kind=ShaderKind.FRAGMENT,
            alu_instructions=10,
            texture_samples=(
                TextureSample(0, FilterMode.BILINEAR),
                TextureSample(1, FilterMode.TRILINEAR),
            ),
        )
        assert shader.instruction_count == 12

    def test_weighted_instruction_count_uses_filter_weights(self):
        shader = ShaderProgram(
            shader_id=0,
            kind=ShaderKind.FRAGMENT,
            alu_instructions=10,
            texture_samples=(
                TextureSample(0, FilterMode.LINEAR),
                TextureSample(1, FilterMode.BILINEAR),
                TextureSample(2, FilterMode.TRILINEAR),
            ),
        )
        assert shader.weighted_instruction_count == 10 + 2 + 4 + 8

    def test_texture_memory_accesses(self):
        shader = ShaderProgram(
            shader_id=0,
            kind=ShaderKind.FRAGMENT,
            alu_instructions=5,
            texture_samples=(TextureSample(0, FilterMode.TRILINEAR),),
        )
        assert shader.texture_memory_accesses == 8

    def test_no_textures_weighted_equals_alu(self):
        shader = ShaderProgram(
            shader_id=1, kind=ShaderKind.VERTEX, alu_instructions=17
        )
        assert shader.weighted_instruction_count == 17
        assert shader.instruction_count == 17

    def test_vertex_shader_with_textures_rejected(self):
        with pytest.raises(TraceError):
            ShaderProgram(
                shader_id=0,
                kind=ShaderKind.VERTEX,
                alu_instructions=10,
                texture_samples=(TextureSample(0, FilterMode.LINEAR),),
            )

    def test_zero_instructions_rejected(self):
        with pytest.raises(TraceError):
            ShaderProgram(shader_id=0, kind=ShaderKind.VERTEX, alu_instructions=0)

    def test_negative_id_rejected(self):
        with pytest.raises(TraceError):
            ShaderProgram(shader_id=-1, kind=ShaderKind.VERTEX, alu_instructions=5)
