"""Tests for mesh and texture descriptors."""

import pytest

from repro.errors import TraceError
from repro.scene.mesh import Mesh, Texture


def make_mesh(**overrides) -> Mesh:
    params = dict(
        mesh_id=0,
        vertex_count=100,
        primitive_count=180,
        vertex_stride_bytes=32,
        bounding_radius=1.0,
        base_address=0,
    )
    params.update(overrides)
    return Mesh(**params)


class TestMesh:
    def test_vertex_buffer_bytes(self):
        assert make_mesh().vertex_buffer_bytes == 100 * 32

    def test_vertex_reuse(self):
        mesh = make_mesh(vertex_count=100, primitive_count=200)
        assert mesh.vertex_reuse == pytest.approx(6.0)

    def test_default_closed(self):
        assert make_mesh().closed_surface is True

    @pytest.mark.parametrize(
        "field,value",
        [
            ("mesh_id", -1),
            ("vertex_count", 2),
            ("primitive_count", 0),
            ("vertex_stride_bytes", 2),
            ("bounding_radius", 0.0),
            ("bounding_radius", -1.0),
            ("base_address", -4),
        ],
    )
    def test_invalid_fields_rejected(self, field, value):
        with pytest.raises(TraceError):
            make_mesh(**{field: value})


class TestTexture:
    def test_size_bytes(self):
        tex = Texture(
            texture_id=0, width=64, height=32, texel_bytes=4, base_address=0
        )
        assert tex.size_bytes == 64 * 32 * 4

    @pytest.mark.parametrize(
        "field,value",
        [
            ("texture_id", -1),
            ("width", 0),
            ("height", 0),
            ("texel_bytes", 0),
            ("base_address", -1),
        ],
    )
    def test_invalid_fields_rejected(self, field, value):
        params = dict(
            texture_id=0, width=64, height=64, texel_bytes=4, base_address=0
        )
        params[field] = value
        with pytest.raises(TraceError):
            Texture(**params)
