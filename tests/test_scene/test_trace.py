"""Tests for trace validation, slicing and serialization."""

import pytest

from repro.errors import TraceError
from repro.scene.frame import Camera, Frame
from repro.scene.shader import ShaderKind, ShaderProgram
from repro.scene.trace import WorkloadTrace


class TestValidation:
    def test_valid_trace(self, tiny_trace):
        assert tiny_trace.frame_count == 6

    def test_empty_frames_rejected(self, vertex_shader, fragment_shader,
                                   simple_mesh, texture):
        with pytest.raises(TraceError):
            WorkloadTrace(
                name="empty",
                vertex_shaders=(vertex_shader,),
                fragment_shaders=(fragment_shader,),
                meshes=(simple_mesh,),
                textures=(texture,),
                frames=(),
            )

    def test_wrong_kind_in_table(self, tiny_trace, fragment_shader):
        with pytest.raises(TraceError):
            WorkloadTrace(
                name="bad",
                vertex_shaders=(fragment_shader,),  # fragment in vertex table
                fragment_shaders=tiny_trace.fragment_shaders,
                meshes=tiny_trace.meshes,
                textures=tiny_trace.textures,
                frames=tiny_trace.frames,
            )

    def test_non_dense_shader_ids(self, tiny_trace, texture, simple_mesh):
        misnumbered = ShaderProgram(
            shader_id=5, kind=ShaderKind.VERTEX, alu_instructions=4
        )
        with pytest.raises(TraceError):
            WorkloadTrace(
                name="bad",
                vertex_shaders=(misnumbered,),
                fragment_shaders=tiny_trace.fragment_shaders,
                meshes=(simple_mesh,),
                textures=(texture,),
                frames=tiny_trace.frames,
            )

    def test_non_dense_frame_ids(self, tiny_trace):
        shuffled = (tiny_trace.frames[1],) + tiny_trace.frames[2:] + (
            tiny_trace.frames[0],
        )
        with pytest.raises(TraceError):
            WorkloadTrace(
                name="bad",
                vertex_shaders=tiny_trace.vertex_shaders,
                fragment_shaders=tiny_trace.fragment_shaders,
                meshes=tiny_trace.meshes,
                textures=tiny_trace.textures,
                frames=shuffled,
            )

    def test_unknown_texture_rejected(self, tiny_trace):
        with pytest.raises(TraceError):
            WorkloadTrace(
                name="bad",
                vertex_shaders=tiny_trace.vertex_shaders,
                fragment_shaders=tiny_trace.fragment_shaders,
                meshes=tiny_trace.meshes,
                textures=(),  # frames bind texture 0
                frames=tiny_trace.frames,
            )


class TestIteration:
    def test_len_and_iter(self, tiny_trace):
        assert len(tiny_trace) == 6
        assert [f.frame_id for f in tiny_trace] == list(range(6))


class TestSlice:
    def test_slice_rebases_frame_ids(self, tiny_trace):
        part = tiny_trace.slice(2, 5)
        assert part.frame_count == 3
        assert [f.frame_id for f in part] == [0, 1, 2]

    def test_slice_shares_resources(self, tiny_trace):
        part = tiny_trace.slice(0, 2)
        assert part.meshes is tiny_trace.meshes
        assert part.textures is tiny_trace.textures

    @pytest.mark.parametrize("bounds", [(-1, 3), (3, 3), (0, 7), (5, 2)])
    def test_invalid_bounds(self, tiny_trace, bounds):
        with pytest.raises(TraceError):
            tiny_trace.slice(*bounds)


class TestSerialization:
    def test_round_trip_dict(self, tiny_trace):
        rebuilt = WorkloadTrace.from_dict(tiny_trace.to_dict())
        assert rebuilt.name == tiny_trace.name
        assert rebuilt.frame_count == tiny_trace.frame_count
        assert rebuilt.vertex_shaders == tiny_trace.vertex_shaders
        assert rebuilt.fragment_shaders == tiny_trace.fragment_shaders
        assert rebuilt.meshes == tiny_trace.meshes
        assert rebuilt.textures == tiny_trace.textures

    def test_round_trip_preserves_draw_calls(self, tiny_trace):
        rebuilt = WorkloadTrace.from_dict(tiny_trace.to_dict())
        original = tiny_trace.frames[0].draw_calls[0]
        restored = rebuilt.frames[0].draw_calls[0]
        assert restored.position == original.position
        assert restored.scale == original.scale
        assert restored.overdraw == original.overdraw
        assert restored.opaque == original.opaque

    def test_round_trip_file(self, tiny_trace, tmp_path):
        path = tmp_path / "trace.json"
        tiny_trace.save(path)
        rebuilt = WorkloadTrace.load(path)
        assert rebuilt.frame_count == tiny_trace.frame_count

    def test_malformed_payload(self):
        with pytest.raises(TraceError):
            WorkloadTrace.from_dict({"name": "x"})
