"""Tests for draw call validation and derived quantities."""

import pytest

from repro.errors import TraceError
from repro.scene.draw import DrawCall
from repro.scene.shader import FilterMode, ShaderKind, ShaderProgram, TextureSample


class TestDrawCallValidation:
    def test_valid(self, draw_call):
        assert draw_call.instance_count == 1

    def test_kind_mismatch_vertex(self, simple_mesh, fragment_shader):
        with pytest.raises(TraceError):
            DrawCall(
                mesh=simple_mesh,
                vertex_shader=fragment_shader,
                fragment_shader=fragment_shader,
                texture_ids=(0,),
            )

    def test_kind_mismatch_fragment(self, simple_mesh, vertex_shader):
        with pytest.raises(TraceError):
            DrawCall(
                mesh=simple_mesh,
                vertex_shader=vertex_shader,
                fragment_shader=vertex_shader,
            )

    def test_unbound_texture_slot_rejected(self, simple_mesh, vertex_shader):
        needs_two = ShaderProgram(
            shader_id=1,
            kind=ShaderKind.FRAGMENT,
            alu_instructions=8,
            texture_samples=(
                TextureSample(0, FilterMode.LINEAR),
                TextureSample(1, FilterMode.LINEAR),
            ),
        )
        with pytest.raises(TraceError):
            DrawCall(
                mesh=simple_mesh,
                vertex_shader=vertex_shader,
                fragment_shader=needs_two,
                texture_ids=(7,),  # only slot 0 bound
            )

    @pytest.mark.parametrize(
        "field,value",
        [("scale", 0.0), ("instance_count", 0), ("overdraw", 0.5)],
    )
    def test_invalid_numeric_fields(
        self, simple_mesh, vertex_shader, fragment_shader, field, value
    ):
        with pytest.raises(TraceError):
            DrawCall(
                mesh=simple_mesh,
                vertex_shader=vertex_shader,
                fragment_shader=fragment_shader,
                texture_ids=(0,),
                **{field: value},
            )


class TestDerived:
    def test_submitted_counts_scale_with_instances(
        self, simple_mesh, vertex_shader, fragment_shader
    ):
        dc = DrawCall(
            mesh=simple_mesh,
            vertex_shader=vertex_shader,
            fragment_shader=fragment_shader,
            texture_ids=(0,),
            instance_count=3,
        )
        assert dc.submitted_vertices == simple_mesh.vertex_count * 3
        assert dc.submitted_primitives == simple_mesh.primitive_count * 3

    def test_world_radius(self, draw_call):
        assert draw_call.world_radius == pytest.approx(
            draw_call.mesh.bounding_radius * draw_call.scale
        )
