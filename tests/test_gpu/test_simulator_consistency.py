"""Property test: functional and cycle-accurate simulators always agree.

The methodology depends on the functional profile counting exactly the
shader work the timing model executes (Section IV-A: TEAPOT's functional
front-end feeds its timing back-end).  This fuzzes randomly generated
frames through both simulators and checks the shared counts.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.cycle_sim import CycleAccurateSimulator
from repro.gpu.functional_sim import FunctionalSimulator
from repro.scene.draw import DrawCall
from repro.scene.frame import Camera, Frame
from repro.scene.mesh import Mesh, Texture
from repro.scene.shader import (
    FilterMode,
    ShaderKind,
    ShaderProgram,
    TextureSample,
)
from repro.scene.trace import WorkloadTrace
from repro.scene.vectors import Vec3

VS = ShaderProgram(0, ShaderKind.VERTEX, alu_instructions=12)
FS_PLAIN = ShaderProgram(0, ShaderKind.FRAGMENT, alu_instructions=9)
FS_TEXTURED = ShaderProgram(
    1, ShaderKind.FRAGMENT, alu_instructions=14,
    texture_samples=(TextureSample(0, FilterMode.BILINEAR),),
)
TEXTURE = Texture(0, 256, 256, 4, 8 << 20)
MESHES = (
    Mesh(0, 60, 100, 32, 1.0, 0 << 20, closed_surface=True),
    Mesh(1, 4, 2, 16, 1.0, 1 << 20, closed_surface=False),
)


def draw_calls():
    return st.builds(
        DrawCall,
        mesh=st.sampled_from(MESHES),
        vertex_shader=st.just(VS),
        fragment_shader=st.sampled_from([FS_PLAIN, FS_TEXTURED]),
        texture_ids=st.just((0,)),
        position=st.builds(
            Vec3, st.floats(-30, 30), st.floats(-20, 20), st.floats(-80, 10)
        ),
        scale=st.floats(0.2, 12.0),
        instance_count=st.integers(1, 4),
        overdraw=st.floats(1.0, 3.0),
        opaque=st.booleans(),
        depth_layer=st.integers(0, 3),
    )


def traces():
    def build(frames_calls):
        frames = tuple(
            Frame(frame_id=i, camera=Camera(), draw_calls=tuple(calls))
            for i, calls in enumerate(frames_calls)
        )
        return WorkloadTrace(
            name="fuzz",
            vertex_shaders=(VS,),
            fragment_shaders=(FS_PLAIN, FS_TEXTURED),
            meshes=MESHES,
            textures=(TEXTURE,),
            frames=frames,
        )

    return st.lists(
        st.lists(draw_calls(), min_size=1, max_size=4), min_size=1, max_size=4
    ).map(build)


class TestConsistency:
    @given(trace=traces())
    @settings(max_examples=40, deadline=None)
    def test_shader_counts_agree(self, trace):
        profile = FunctionalSimulator().profile(trace)
        cycle = CycleAccurateSimulator().simulate(trace)
        for frame_profile, frame_stats in zip(
            profile.profiles, cycle.frame_stats
        ):
            assert (
                frame_profile.vs_executions.sum() == frame_stats.vertices_shaded
            )
            assert (
                frame_profile.fs_executions.sum() == frame_stats.fragments_shaded
            )
            assert frame_profile.primitives == frame_stats.primitives_binned
            assert (
                frame_profile.vertex_instructions
                == frame_stats.vertex_instructions
            )
            assert (
                frame_profile.fragment_instructions
                == frame_stats.fragment_instructions
            )

    @given(trace=traces())
    @settings(max_examples=20, deadline=None)
    def test_cycle_sim_invariants(self, trace):
        result = CycleAccurateSimulator().simulate(trace)
        for stats in result.frame_stats:
            assert stats.cycles > 0
            assert stats.energy_raster >= 0
            assert stats.l2_cache.hits + stats.l2_cache.misses == (
                stats.l2_cache.accesses
            )
            assert stats.dram.row_hits + stats.dram.row_misses == (
                stats.dram.total_accesses
            )
