"""Tests for the cycle-accurate simulator facade."""

import pytest

from repro.errors import SimulationError
from repro.gpu.cycle_sim import CycleAccurateSimulator, SequenceResult
from repro.gpu.stats import FrameStats


@pytest.fixture(scope="module")
def simulator() -> CycleAccurateSimulator:
    return CycleAccurateSimulator()


class TestFullSequence:
    def test_simulates_every_frame(self, simulator, tiny_trace):
        result = simulator.simulate(tiny_trace)
        assert result.frame_ids == tuple(range(6))
        assert len(result.frame_stats) == 6

    def test_positive_cycles(self, simulator, tiny_trace):
        result = simulator.simulate(tiny_trace)
        assert all(s.cycles > 0 for s in result.frame_stats)

    def test_near_frames_heavier_than_far_frames(self, simulator, tiny_trace):
        """The tiny trace's first half renders a closer (bigger) object."""
        result = simulator.simulate(tiny_trace)
        near = result.frame_stats[0]
        far = result.frame_stats[5]
        assert near.fragments_shaded > far.fragments_shaded
        assert near.cycles > far.cycles

    def test_totals_sum_frames(self, simulator, tiny_trace):
        result = simulator.simulate(tiny_trace)
        assert result.totals.cycles == pytest.approx(
            sum(s.cycles for s in result.frame_stats)
        )

    def test_deterministic(self, simulator, tiny_trace):
        first = simulator.simulate(tiny_trace)
        second = simulator.simulate(tiny_trace)
        assert [s.cycles for s in first.frame_stats] == [
            s.cycles for s in second.frame_stats
        ]
        assert first.totals.dram_accesses == second.totals.dram_accesses

    def test_phase_cycles_compose_total(self, simulator, tiny_trace):
        result = simulator.simulate(tiny_trace)
        for stats in result.frame_stats:
            lower = max(stats.geometry_cycles, stats.tiling_cycles)
            assert stats.cycles >= lower + stats.raster_cycles

    def test_energy_positive_in_all_phases(self, simulator, tiny_trace):
        totals = simulator.simulate(tiny_trace).totals
        assert totals.energy_geometry > 0
        assert totals.energy_tiling > 0
        assert totals.energy_raster > 0


class TestSubsetSimulation:
    def test_subset(self, simulator, tiny_trace):
        result = simulator.simulate(tiny_trace, frame_ids=[1, 4])
        assert result.frame_ids == (1, 4)

    def test_subset_sorted(self, simulator, tiny_trace):
        result = simulator.simulate(tiny_trace, frame_ids=[4, 1])
        assert result.frame_ids == (1, 4)

    def test_out_of_range_rejected(self, simulator, tiny_trace):
        with pytest.raises(SimulationError):
            simulator.simulate(tiny_trace, frame_ids=[99])

    def test_stats_for(self, simulator, tiny_trace):
        result = simulator.simulate(tiny_trace, frame_ids=[2])
        assert result.stats_for(2).cycles > 0
        with pytest.raises(SimulationError):
            result.stats_for(3)


class TestSingleFrame:
    def test_simulate_frame(self, simulator, tiny_trace):
        stats = simulator.simulate_frame(tiny_trace.frames[0], tiny_trace)
        assert stats.cycles > 0
        assert stats.fragments_shaded > 0


class TestSequenceResult:
    def test_mismatched_lengths_rejected(self):
        with pytest.raises(SimulationError):
            SequenceResult(
                trace_name="x",
                frame_ids=(0, 1),
                frame_stats=(FrameStats(),),
                elapsed_seconds=0.0,
            )
