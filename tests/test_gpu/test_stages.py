"""Tests for the geometry / tiling / raster stage timing models."""

import pytest

from repro.gpu.config import default_config
from repro.gpu.geometry import simulate_geometry
from repro.gpu.hierarchy import MemorySystem
from repro.gpu.raster import simulate_raster, texture_footprint_lines
from repro.gpu.tiling import polygon_list_lines, simulate_tiling, varyings_lines
from repro.gpu.workmodel import compute_frame_work
from repro.scene.frame import Frame
from repro.scene.mesh import Texture

CONFIG = default_config()


@pytest.fixture
def frame_work(tiny_trace):
    return compute_frame_work(tiny_trace.frames[0], CONFIG)


@pytest.fixture
def mem():
    return MemorySystem(CONFIG)


class TestGeometry:
    def test_vertex_instructions_counted(self, frame_work, mem):
        result = simulate_geometry(frame_work, CONFIG, mem)
        dc = frame_work.draw_work[0].draw_call
        expected = (
            frame_work.vertices_shaded * dc.vertex_shader.instruction_count
        )
        assert result.vertex_instructions == expected

    def test_cycles_at_least_shading_bound(self, frame_work, mem):
        result = simulate_geometry(frame_work, CONFIG, mem)
        assert result.cycles >= result.vertex_instructions / CONFIG.vertex_processors

    def test_vertex_cache_fed(self, frame_work, mem):
        simulate_geometry(frame_work, CONFIG, mem)
        assert mem.vertex_cache.stats.accesses == frame_work.vertices_shaded

    def test_repeat_frame_hits_vertex_cache_if_buffer_fits(self, tiny_trace, mem):
        work = compute_frame_work(tiny_trace.frames[0], CONFIG)
        first = simulate_geometry(work, CONFIG, mem)
        # 300 verts x 32 B = 9600 B > 4 KiB vertex cache -> streams again;
        # just assert determinism of the repeat.
        second = simulate_geometry(work, CONFIG, mem)
        assert second.vertex_instructions == first.vertex_instructions


class TestTiling:
    def test_list_entries_match_work(self, frame_work, mem):
        result = simulate_tiling(frame_work, CONFIG, mem)
        assert result.list_entries == frame_work.prim_tile_pairs

    def test_tile_cache_sees_plist_and_varyings(self, frame_work, mem):
        simulate_tiling(frame_work, CONFIG, mem)
        expected = frame_work.prim_tile_pairs + frame_work.vertices_shaded
        assert mem.tile_cache.stats.accesses == expected

    def test_cycles_cover_binning_throughput(self, frame_work, mem):
        result = simulate_tiling(frame_work, CONFIG, mem)
        assert result.cycles >= frame_work.prim_tile_pairs

    def test_polygon_list_lines(self):
        # 40-byte entries on 64-byte lines.
        assert polygon_list_lines(16, CONFIG) == 10
        assert polygon_list_lines(1, CONFIG) == 1

    def test_varyings_lines(self):
        assert varyings_lines(16, CONFIG) == 16 * 32 // 64
        assert varyings_lines(1, CONFIG) == 1


class TestRaster:
    def test_fragment_instructions(self, frame_work, mem):
        textures = {0: Texture(0, 256, 256, 4, 1 << 20)}
        result = simulate_raster(frame_work, CONFIG, mem, textures)
        dc = frame_work.draw_work[0].draw_call
        expected = (
            frame_work.fragments_shaded * dc.fragment_shader.instruction_count
        )
        assert result.fragment_instructions == expected

    def test_texture_accesses_weighted_by_filter(self, frame_work, mem):
        textures = {0: Texture(0, 256, 256, 4, 1 << 20)}
        result = simulate_raster(frame_work, CONFIG, mem, textures)
        # conftest fragment shader: one bilinear sample = 4 accesses/frag.
        assert result.texture_accesses == 4 * frame_work.fragments_shaded

    def test_depth_buffer_sees_all_generated_fragments(self, frame_work, mem):
        textures = {0: Texture(0, 256, 256, 4, 1 << 20)}
        simulate_raster(frame_work, CONFIG, mem, textures)
        expected = (
            frame_work.fragments_generated + frame_work.fragments_shaded
        )
        assert mem.depth_buffer.accesses == expected

    def test_framebuffer_flush_scales_with_active_tiles(self, frame_work, mem):
        textures = {0: Texture(0, 256, 256, 4, 1 << 20)}
        result = simulate_raster(frame_work, CONFIG, mem, textures)
        expected = (
            frame_work.active_tiles * CONFIG.tile_pixels
            * CONFIG.color_bytes_per_pixel // CONFIG.l2_cache.line_bytes
        )
        assert result.framebuffer_lines == expected

    def test_cycles_at_least_shading_bound(self, frame_work, mem):
        textures = {0: Texture(0, 256, 256, 4, 1 << 20)}
        result = simulate_raster(frame_work, CONFIG, mem, textures)
        assert result.cycles >= (
            result.fragment_instructions / CONFIG.fragment_processors
        )


class TestTextureFootprint:
    def test_bounded_by_texture_size(self):
        tex = Texture(0, 64, 64, 4, 0)  # 16 KiB
        lines = texture_footprint_lines(tex, 10**7, trilinear=False, line_bytes=64)
        assert lines == 16 * 1024 // 64

    def test_bounded_by_pixels_sampled(self):
        tex = Texture(0, 1024, 1024, 4, 0)
        lines = texture_footprint_lines(tex, 160, trilinear=False, line_bytes=64)
        assert lines == 160 * 4 // 64

    def test_trilinear_overhead(self):
        tex = Texture(0, 1024, 1024, 4, 0)
        base = texture_footprint_lines(tex, 1600, False, 64)
        tri = texture_footprint_lines(tex, 1600, True, 64)
        assert tri == pytest.approx(base * 1.25, rel=0.02)

    def test_minimum_one_line(self):
        tex = Texture(0, 16, 16, 1, 0)
        assert texture_footprint_lines(tex, 1, False, 64) == 1
