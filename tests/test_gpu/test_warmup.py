"""Tests for the ASSI warm-up option of sampled simulation."""

import pytest

from repro.errors import SimulationError
from repro.gpu.cycle_sim import CycleAccurateSimulator


@pytest.fixture(scope="module")
def simulator():
    return CycleAccurateSimulator()


class TestWarmup:
    def test_zero_warmup_is_default_behaviour(self, simulator, tiny_trace):
        plain = simulator.simulate(tiny_trace, frame_ids=[3])
        warm0 = simulator.simulate(tiny_trace, frame_ids=[3], warmup_frames=0)
        assert plain.frame_stats[0].cycles == warm0.frame_stats[0].cycles

    def test_warmup_changes_cache_state(self, simulator, tiny_trace):
        """Simulating frame 2 first leaves frame 3's working set warm."""
        cold = simulator.simulate(tiny_trace, frame_ids=[3])
        warm = simulator.simulate(tiny_trace, frame_ids=[3], warmup_frames=2)
        assert (
            warm.frame_stats[0].texture_cache.misses
            <= cold.frame_stats[0].texture_cache.misses
        )

    def test_warmup_does_not_change_work_counts(self, simulator, tiny_trace):
        cold = simulator.simulate(tiny_trace, frame_ids=[4])
        warm = simulator.simulate(tiny_trace, frame_ids=[4], warmup_frames=3)
        assert (
            warm.frame_stats[0].fragments_shaded
            == cold.frame_stats[0].fragments_shaded
        )
        assert (
            warm.frame_stats[0].vertex_instructions
            == cold.frame_stats[0].vertex_instructions
        )

    def test_only_selected_frames_reported(self, simulator, tiny_trace):
        result = simulator.simulate(
            tiny_trace, frame_ids=[2, 5], warmup_frames=2
        )
        assert result.frame_ids == (2, 5)
        assert len(result.frame_stats) == 2

    def test_warmup_clamped_at_sequence_start(self, simulator, tiny_trace):
        result = simulator.simulate(tiny_trace, frame_ids=[0], warmup_frames=5)
        assert result.frame_ids == (0,)

    def test_adjacent_selections_do_not_rewarm(self, simulator, tiny_trace):
        """Warm-up never re-simulates frames already covered."""
        contiguous = simulator.simulate(
            tiny_trace, frame_ids=[1, 2, 3], warmup_frames=3
        )
        full = simulator.simulate(tiny_trace)
        # Frames 1-3 of the warmed subset saw frames 0.. in order, exactly
        # like the full run, so their stats must match it.
        for fid in (1, 2, 3):
            assert contiguous.stats_for(fid).l2_cache.misses == (
                full.stats_for(fid).l2_cache.misses
            )

    def test_negative_warmup_rejected(self, simulator, tiny_trace):
        with pytest.raises(SimulationError):
            simulator.simulate(tiny_trace, frame_ids=[1], warmup_frames=-1)

    def test_full_run_ignores_warmup(self, simulator, tiny_trace):
        result = simulator.simulate(tiny_trace, warmup_frames=99)
        assert len(result.frame_stats) == tiny_trace.frame_count
