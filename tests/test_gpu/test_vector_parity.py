"""Vector backend parity: batched lowering must match the scalar oracle.

The vector backend is only admissible because it is bit-identical to the
scalar reference model (docs/simulation-backends.md).  These tests assert
that contract on every rendering mode, plus the harness's own guarantees
(deterministic sampling, field-level mismatch reporting) and the
frame-selection fixes that rode along (duplicate dedup, empty-selection
error).
"""

import dataclasses

import pytest

from repro.errors import ConfigError, SimulationError
from repro.gpu.config import CycleConfig, GPUConfig
from repro.gpu.cycle_sim import CycleAccurateSimulator
from repro.gpu.parity import (
    check_backend_parity,
    compare_results,
    sample_frame_ids,
)


def scalar_sim(**kwargs) -> CycleAccurateSimulator:
    return CycleAccurateSimulator(cycle=CycleConfig(backend="scalar"), **kwargs)


def vector_sim(**kwargs) -> CycleAccurateSimulator:
    return CycleAccurateSimulator(cycle=CycleConfig(backend="vector"), **kwargs)


class TestParity:
    @pytest.mark.parametrize("mode", ["tbr", "tbdr", "imr"])
    def test_bit_identical_per_mode(self, tiny_trace, mode):
        report = check_backend_parity(
            tiny_trace, config=GPUConfig(rendering_mode=mode)
        )
        assert report.identical, report.mismatches
        assert report.mismatches == ()

    def test_full_sequence_identity(self, tiny_trace):
        scalar = scalar_sim().simulate(tiny_trace)
        vector = vector_sim().simulate(tiny_trace)
        assert scalar.frame_ids == vector.frame_ids
        for left, right in zip(scalar.frame_stats, vector.frame_stats):
            assert left == right

    def test_parity_with_warmup(self, tiny_trace):
        report = check_backend_parity(
            tiny_trace, frame_ids=[2, 4], warmup_frames=2
        )
        assert report.identical, report.mismatches

    def test_report_shape(self, tiny_trace):
        report = check_backend_parity(tiny_trace)
        assert report.trace_name == tiny_trace.name
        assert report.frame_ids == tuple(range(tiny_trace.frame_count))
        payload = report.to_dict()
        assert payload["identical"] is True
        assert payload["mismatches"] == []

    def test_compare_reports_field_mismatch(self, tiny_trace):
        result = scalar_sim().simulate(tiny_trace, frame_ids=[0, 1])
        stats = list(result.frame_stats)
        stats[1] = dataclasses.replace(stats[1], cycles=stats[1].cycles + 1.0)
        doctored = dataclasses.replace(result, frame_stats=tuple(stats))
        mismatches = compare_results(result, doctored)
        assert len(mismatches) == 1
        assert "frame 1" in mismatches[0] and "cycles" in mismatches[0]


class TestSampling:
    def test_small_trace_takes_all_frames(self):
        assert sample_frame_ids(5, max_frames=16) == [0, 1, 2, 3, 4]

    def test_large_trace_strides_and_keeps_last(self):
        sampled = sample_frame_ids(1000, max_frames=16)
        assert len(sampled) == 16
        assert sampled[0] == 0
        assert sampled[-1] == 999
        assert sampled == sorted(set(sampled))

    def test_deterministic(self):
        assert sample_frame_ids(317, max_frames=9) == sample_frame_ids(
            317, max_frames=9
        )

    def test_rejects_empty_trace(self):
        with pytest.raises(SimulationError):
            sample_frame_ids(0)

    def test_rejects_bad_max(self):
        with pytest.raises(SimulationError):
            sample_frame_ids(10, max_frames=0)


class TestFrameSelection:
    """Regression tests for the simulate() frame-selection fixes."""

    def test_duplicate_frame_ids_deduplicated(self, tiny_trace):
        sim = scalar_sim()
        duplicated = sim.simulate(tiny_trace, frame_ids=[3, 3, 5, 5, 3])
        clean = sim.simulate(tiny_trace, frame_ids=[3, 5])
        assert duplicated.frame_ids == (3, 5)
        assert duplicated.frame_stats == clean.frame_stats

    def test_empty_frame_ids_rejected(self, tiny_trace):
        with pytest.raises(SimulationError, match="empty frame selection"):
            scalar_sim().simulate(tiny_trace, frame_ids=[])

    def test_empty_frame_ids_rejected_by_vector_backend(self, tiny_trace):
        with pytest.raises(SimulationError, match="empty frame selection"):
            vector_sim().simulate(tiny_trace, frame_ids=[])


class TestCycleConfig:
    def test_default_is_scalar(self):
        assert CycleConfig().backend == "scalar"
        assert CycleAccurateSimulator().cycle.backend == "scalar"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError):
            CycleConfig(backend="simd")

    def test_vector_requires_region_cache_model(self):
        with pytest.raises(SimulationError):
            CycleAccurateSimulator(
                cache_model="line", cycle=CycleConfig(backend="vector")
            )
