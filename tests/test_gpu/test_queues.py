"""Tests for the inter-stage queue model."""

import pytest

from repro.errors import SimulationError
from repro.gpu.config import QueueConfig
from repro.gpu.queues import QueueOccupancy, memory_stall_cycles, pipelined_cycles

QUEUE = QueueConfig("q", entries=16, entry_bytes=100)


class TestMemoryStall:
    def test_zero_misses_no_stall(self):
        assert memory_stall_cycles(0, 100.0, QUEUE) == 0.0

    def test_single_miss_full_latency(self):
        assert memory_stall_cycles(1, 100.0, QUEUE) == pytest.approx(100.0)

    def test_many_misses_overlap_up_to_queue_depth(self):
        # 160 misses overlapped 16-wide expose 10x the latency.
        assert memory_stall_cycles(160, 100.0, QUEUE) == pytest.approx(1000.0)

    def test_few_misses_overlap_fully(self):
        # 8 misses, up to 16 in flight: the whole batch costs one latency.
        assert memory_stall_cycles(8, 100.0, QUEUE) == pytest.approx(100.0)

    def test_negative_inputs_rejected(self):
        with pytest.raises(SimulationError):
            memory_stall_cycles(-1, 100.0, QUEUE)
        with pytest.raises(SimulationError):
            memory_stall_cycles(1, -5.0, QUEUE)

    def test_monotone_in_misses(self):
        stalls = [memory_stall_cycles(m, 50.0, QUEUE) for m in (1, 16, 32, 64)]
        assert stalls == sorted(stalls)


class TestPipelinedCycles:
    def test_empty(self):
        assert pipelined_cycles([]) == 0.0

    def test_slowest_stage_dominates(self):
        assert pipelined_cycles([100.0, 500.0, 200.0]) == 500.0

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            pipelined_cycles([10.0, -1.0])


class TestOccupancy:
    def test_push_accumulates(self):
        occ = QueueOccupancy(QUEUE)
        occ.push(10)
        occ.push(5)
        assert occ.items_enqueued == 15
        assert occ.bytes_moved == 1500

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            QueueOccupancy(QUEUE).push(-1)
