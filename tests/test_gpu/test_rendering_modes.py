"""Tests for the TBDR / IMR rendering-mode extensions (Section IV-A)."""

import dataclasses

import pytest

from repro.errors import ConfigError
from repro.gpu.config import GPUConfig, default_config
from repro.gpu.cycle_sim import CycleAccurateSimulator
from repro.gpu.workmodel import compute_frame_work


def config_for(mode: str) -> GPUConfig:
    return dataclasses.replace(default_config(), rendering_mode=mode)


class TestConfig:
    def test_default_is_tbr(self):
        assert default_config().rendering_mode == "tbr"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigError):
            config_for("raytracing")


class TestWorkModel:
    def test_tbdr_shades_one_opaque_layer(self, tiny_trace):
        """HSR removes opaque overdraw entirely (conftest dc: overdraw 1.5)."""
        frame = tiny_trace.frames[0]
        tbr = compute_frame_work(frame, config_for("tbr"))
        tbdr = compute_frame_work(frame, config_for("tbdr"))
        assert tbdr.fragments_shaded < tbr.fragments_shaded
        dcw = tbdr.draw_work[0]
        assert dcw.fragments_shaded == pytest.approx(
            dcw.footprint_pixels, rel=0.01
        )

    def test_tbdr_generated_unchanged(self, tiny_trace):
        frame = tiny_trace.frames[0]
        tbr = compute_frame_work(frame, config_for("tbr"))
        tbdr = compute_frame_work(frame, config_for("tbdr"))
        assert tbdr.fragments_generated == tbr.fragments_generated

    def test_imr_has_no_binning_pairs(self, tiny_trace):
        frame = tiny_trace.frames[0]
        imr = compute_frame_work(frame, config_for("imr"))
        assert imr.prim_tile_pairs == 0
        assert imr.active_tiles == 0
        # But primitives are still processed (PRIM stays meaningful).
        assert imr.primitives_binned > 0

    def test_imr_occlusion_follows_submission_order(
        self, simple_mesh, vertex_shader, fragment_shader
    ):
        """Back-to-front submission defeats IMR's depth test but not TBR's
        depth-sorted model."""
        from repro.scene.draw import DrawCall
        from repro.scene.frame import Camera, Frame
        from repro.scene.vectors import Vec3

        front = DrawCall(
            mesh=simple_mesh, vertex_shader=vertex_shader,
            fragment_shader=fragment_shader, texture_ids=(0,),
            position=Vec3(0, 0, -5), scale=3.0, depth_layer=0,
        )
        back = DrawCall(
            mesh=simple_mesh, vertex_shader=vertex_shader,
            fragment_shader=fragment_shader, texture_ids=(0,),
            position=Vec3(0, 0, -10), scale=3.0, depth_layer=1,
        )
        # Submit back first (painter's order).
        frame = Frame(frame_id=0, camera=Camera(), draw_calls=(back, front))
        tbr = compute_frame_work(frame, config_for("tbr"))
        imr = compute_frame_work(frame, config_for("imr"))
        assert imr.fragments_shaded > tbr.fragments_shaded


def painter_order_trace(simple_mesh, vertex_shader, fragment_shader, texture):
    """A dense back-to-front scene: IMR's worst case, TBR's bread and
    butter (large overlapping layers filling the screen)."""
    from repro.scene.draw import DrawCall
    from repro.scene.frame import Camera, Frame
    from repro.scene.trace import WorkloadTrace
    from repro.scene.vectors import Vec3

    camera = Camera()
    draw_calls = tuple(
        DrawCall(
            mesh=simple_mesh, vertex_shader=vertex_shader,
            fragment_shader=fragment_shader, texture_ids=(0,),
            position=Vec3(0, 0, -4.0 - layer), scale=8.0,
            overdraw=1.5, depth_layer=4 - layer,  # farthest first
        )
        for layer in range(5)
    )
    frames = tuple(
        Frame(frame_id=i, camera=camera, draw_calls=draw_calls)
        for i in range(3)
    )
    return WorkloadTrace(
        name="painter", vertex_shaders=(vertex_shader,),
        fragment_shaders=(fragment_shader,), meshes=(simple_mesh,),
        textures=(texture,), frames=frames,
    )


class TestIMRFullyOccludedTransparent:
    def test_occluded_transparent_call_simulates(
        self, simple_mesh, vertex_shader, fragment_shader, texture
    ):
        """Regression: a transparent draw call whose fragments are all
        depth-culled in IMR must not crash the raster model."""
        from repro.scene.draw import DrawCall
        from repro.scene.frame import Camera, Frame
        from repro.scene.trace import WorkloadTrace
        from repro.scene.vectors import Vec3

        occluder = DrawCall(
            mesh=simple_mesh, vertex_shader=vertex_shader,
            fragment_shader=fragment_shader, texture_ids=(0,),
            position=Vec3(0, 0, -2.0), scale=50.0, depth_layer=0,
        )
        hidden_transparent = DrawCall(
            mesh=simple_mesh, vertex_shader=vertex_shader,
            fragment_shader=fragment_shader, texture_ids=(0,),
            position=Vec3(0, 0, -10.0), scale=0.5, depth_layer=1,
            opaque=False,
        )
        frame = Frame(
            frame_id=0, camera=Camera(),
            draw_calls=(occluder, hidden_transparent),
        )
        trace = WorkloadTrace(
            name="occluded", vertex_shaders=(vertex_shader,),
            fragment_shaders=(fragment_shader,), meshes=(simple_mesh,),
            textures=(texture,), frames=(frame,),
        )
        result = CycleAccurateSimulator(config_for("imr")).simulate(trace)
        assert result.totals.cycles > 0


class TestSimulator:
    def test_tbr_beats_imr_on_dram_traffic(
        self, simple_mesh, vertex_shader, fragment_shader, texture
    ):
        """Section II-A: TBR writes each pixel once; IMR writes every
        overdrawn fragment's color to memory."""
        trace = painter_order_trace(
            simple_mesh, vertex_shader, fragment_shader, texture
        )
        tbr = CycleAccurateSimulator(config_for("tbr")).simulate(trace)
        imr = CycleAccurateSimulator(config_for("imr")).simulate(trace)
        assert imr.totals.dram.write_accesses > tbr.totals.dram.write_accesses
        assert imr.totals.fragments_shaded > tbr.totals.fragments_shaded

    def test_imr_has_no_tiling_activity(self, tiny_trace):
        imr = CycleAccurateSimulator(config_for("imr")).simulate(tiny_trace)
        assert imr.totals.tile_cache_accesses == 0
        assert imr.totals.tiling_cycles == 0
        assert imr.totals.energy_tiling < imr.totals.energy_raster * 0.01

    def test_tbdr_saves_fragment_work(self, tiny_trace):
        tbr = CycleAccurateSimulator(config_for("tbr")).simulate(tiny_trace)
        tbdr = CycleAccurateSimulator(config_for("tbdr")).simulate(tiny_trace)
        assert tbdr.totals.fragment_instructions < tbr.totals.fragment_instructions
        assert tbdr.totals.cycles < tbr.totals.cycles

    def test_megsim_features_remain_valid_on_tbdr(self, tiny_trace):
        """The methodology is architecture-independent: plans built from a
        TBDR functional profile still cover every frame."""
        import dataclasses as dc

        from repro.core.sampler import MEGsim
        from repro.gpu.functional_sim import FunctionalSimulator

        profile = FunctionalSimulator(config_for("tbdr")).profile(tiny_trace)
        plan = MEGsim().plan_from_profile(profile)
        assert sum(c.weight for c in plan.clusters) == tiny_trace.frame_count
