"""Tests for the DRAM bank/row-buffer model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.gpu.config import DRAMConfig
from repro.gpu.dram import DRAMModel, DRAMStats


def make_dram(**overrides) -> DRAMModel:
    return DRAMModel(DRAMConfig(**overrides))


class TestTransfer:
    def test_single_line_is_row_miss(self):
        dram = make_dram()
        latency = dram.transfer(1)
        assert latency == 100
        assert dram.stats.row_misses == 1
        assert dram.stats.row_hits == 0

    def test_contiguous_run_hits_open_row(self):
        dram = make_dram()  # 2048B rows = 32 lines/row
        dram.transfer(32, contiguous=True)
        assert dram.stats.row_misses == 1
        assert dram.stats.row_hits == 31

    def test_run_crossing_rows(self):
        dram = make_dram()
        dram.transfer(33, contiguous=True)
        assert dram.stats.row_misses == 2
        assert dram.stats.row_hits == 31

    def test_scattered_run_all_misses(self):
        dram = make_dram()
        dram.transfer(10, contiguous=False)
        assert dram.stats.row_misses == 10

    def test_read_write_accounting(self):
        dram = make_dram()
        dram.transfer(5, write=False)
        dram.transfer(3, write=True)
        assert dram.stats.read_accesses == 5
        assert dram.stats.write_accesses == 3
        assert dram.stats.total_accesses == 8

    def test_busy_cycles_include_transfer_and_activation(self):
        dram = make_dram()
        dram.transfer(32, contiguous=True)
        # 32 lines x 16 cycles + 1 activation x (100 - 50)
        assert dram.stats.busy_cycles == 32 * 16 + 50

    def test_zero_lines_rejected(self):
        with pytest.raises(SimulationError):
            make_dram().transfer(0)


class TestLatency:
    def test_average_latency_bounds(self):
        dram = make_dram()
        dram.transfer(64, contiguous=True)
        assert 50 <= dram.average_latency <= 100

    def test_all_misses_gives_max_latency(self):
        dram = make_dram()
        dram.transfer(4, contiguous=False)
        assert dram.average_latency == pytest.approx(100.0)


class TestStats:
    def test_row_hit_rate_empty(self):
        assert DRAMStats().row_hit_rate == 0.0

    def test_merge(self):
        a = DRAMStats(read_accesses=1, write_accesses=2, row_hits=3,
                      row_misses=4, busy_cycles=5)
        b = DRAMStats(read_accesses=10, write_accesses=20, row_hits=30,
                      row_misses=40, busy_cycles=50)
        a.merge(b)
        assert a.read_accesses == 11
        assert a.write_accesses == 22
        assert a.row_hits == 33
        assert a.row_misses == 44
        assert a.busy_cycles == 55


class TestInvariants:
    @given(
        runs=st.lists(
            st.tuples(st.integers(1, 200), st.booleans(), st.booleans()),
            min_size=1, max_size=50,
        )
    )
    @settings(max_examples=50)
    def test_hits_plus_misses_equals_lines(self, runs):
        dram = make_dram()
        total = 0
        for lines, write, contiguous in runs:
            dram.transfer(lines, write=write, contiguous=contiguous)
            total += lines
        assert dram.stats.row_hits + dram.stats.row_misses == total
        assert dram.stats.total_accesses == total
        assert dram.stats.busy_cycles >= total * 16
