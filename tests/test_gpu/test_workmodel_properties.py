"""Hypothesis property tests on the work model's physical invariants."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.config import default_config
from repro.gpu.workmodel import compute_frame_work
from repro.scene.draw import DrawCall
from repro.scene.frame import Camera, Frame
from repro.scene.mesh import Mesh
from repro.scene.shader import ShaderKind, ShaderProgram
from repro.scene.vectors import Vec3

CONFIG = default_config()
VS = ShaderProgram(0, ShaderKind.VERTEX, alu_instructions=10)
FS = ShaderProgram(0, ShaderKind.FRAGMENT, alu_instructions=15)


def mesh_strategy():
    return st.builds(
        Mesh,
        mesh_id=st.just(0),
        vertex_count=st.integers(4, 3000),
        primitive_count=st.integers(2, 6000),
        vertex_stride_bytes=st.sampled_from([16, 24, 32, 48]),
        bounding_radius=st.floats(0.1, 5.0),
        base_address=st.just(0),
        closed_surface=st.booleans(),
    )


def draw_call_strategy():
    return st.builds(
        DrawCall,
        mesh=mesh_strategy(),
        vertex_shader=st.just(VS),
        fragment_shader=st.just(FS),
        position=st.builds(
            Vec3,
            st.floats(-50, 50),
            st.floats(-50, 50),
            st.floats(-100, 20),
        ),
        scale=st.floats(0.1, 20.0),
        instance_count=st.integers(1, 6),
        overdraw=st.floats(1.0, 4.0),
        opaque=st.booleans(),
        depth_layer=st.integers(0, 5),
    )


frames = st.lists(draw_call_strategy(), min_size=0, max_size=6).map(
    lambda dcs: Frame(frame_id=0, camera=Camera(), draw_calls=tuple(dcs))
)


class TestInvariants:
    @given(frame=frames)
    @settings(max_examples=120, deadline=None)
    def test_counts_conserve(self, frame):
        work = compute_frame_work(frame, CONFIG)
        for dcw in work.draw_work:
            dc = dcw.draw_call
            # Vertices are always shaded, exactly once per submitted vertex.
            assert dcw.vertices_shaded == dc.submitted_vertices
            # Primitive conservation through clip/cull.
            assert (
                dcw.primitives_clipped
                + dcw.primitives_backface_culled
                + dcw.primitives_binned
                == dcw.primitives_submitted
            )
            assert dcw.primitives_submitted == dc.submitted_primitives
            # Fragment conservation through early-Z.
            assert dcw.fragments_occluded + dcw.fragments_shaded == (
                dcw.fragments_generated
            )
            assert 0 <= dcw.fragments_shaded <= dcw.fragments_generated
            # Screen bounds.
            assert 0 <= dcw.footprint_pixels <= CONFIG.screen_pixels
            assert 0.0 <= dcw.screen_coverage <= 1.0
            assert 0 <= dcw.tiles_covered <= CONFIG.total_tiles
            # Binning sanity: no pairs without binned primitives, and at
            # least one tile per binned primitive.
            if dcw.primitives_binned and dcw.tiles_covered:
                assert dcw.prim_tile_pairs >= dcw.primitives_binned
            if dcw.primitives_binned == 0:
                assert dcw.prim_tile_pairs == 0
        assert 0 <= work.active_tiles <= CONFIG.total_tiles

    @given(frame=frames)
    @settings(max_examples=60, deadline=None)
    def test_deterministic(self, frame):
        first = compute_frame_work(frame, CONFIG)
        second = compute_frame_work(frame, CONFIG)
        assert first.fragments_shaded == second.fragments_shaded
        assert first.prim_tile_pairs == second.prim_tile_pairs
        assert first.active_tiles == second.active_tiles

    @given(frame=frames)
    @settings(max_examples=60, deadline=None)
    def test_tbdr_never_shades_more_than_tbr(self, frame):
        import dataclasses

        tbr = compute_frame_work(frame, CONFIG)
        tbdr_config = dataclasses.replace(CONFIG, rendering_mode="tbdr")
        tbdr = compute_frame_work(frame, tbdr_config)
        assert tbdr.fragments_shaded <= tbr.fragments_shaded
        assert tbdr.fragments_generated == tbr.fragments_generated
