"""Tests for the line-granular validation mode (cache_model="line")."""

import pytest

from repro.errors import SimulationError
from repro.gpu.config import CacheConfig, default_config
from repro.gpu.cycle_sim import CycleAccurateSimulator
from repro.gpu.hierarchy import MemorySystem
from repro.gpu.line_adapter import LineBackedRegionCache
from repro.gpu.region_cache import RegionCache


def make_cache(size=1024) -> LineBackedRegionCache:
    return LineBackedRegionCache(CacheConfig("t", size, 64, associativity=2))


class TestAdapter:
    def test_first_sweep_misses_every_line(self):
        cache = make_cache()
        result = cache.access("a", 4, 8)
        assert result.misses == 4
        assert cache.stats.accesses == 8

    def test_resident_region_hits(self):
        cache = make_cache()
        cache.access("a", 4, 4)
        assert cache.access("a", 4, 4).misses == 0

    def test_distinct_keys_do_not_alias(self):
        cache = make_cache(size=64 * 1024)
        cache.access("a", 4, 4)
        cache.access("b", 4, 4)
        assert cache.access("a", 4, 4).misses == 0

    def test_streaming_region_restreams(self):
        cache = make_cache(size=256)  # 4 lines
        cache.access("big", 64, 64)
        assert cache.access("big", 64, 64).misses == 64

    def test_writebacks_on_dirty_eviction(self):
        cache = make_cache(size=256)
        result = cache.access("big", 64, 64, write=True)
        # Streaming dirty lines get evicted (all but the resident tail).
        assert result.writeback_lines >= 64 - 4

    def test_total_accesses_spread_over_lines(self):
        cache = make_cache()
        cache.access("a", 3, 10)
        assert cache.stats.accesses == 10
        assert cache.stats.misses == 3

    def test_invalid_args(self):
        with pytest.raises(SimulationError):
            make_cache().access("a", 0, 1)

    def test_flush(self):
        cache = make_cache()
        cache.access("a", 4, 4, write=True)
        assert cache.flush() == 4


class TestAgreementWithRegionModel:
    def test_sweep_sequence_matches(self):
        """On its design domain (whole-region sweeps, no conflicts) the two
        models agree exactly."""
        config = CacheConfig("t", 2048, 64, associativity=32)  # fully assoc.
        line = LineBackedRegionCache(config)
        region = RegionCache(config)
        sequence = [("a", 8), ("b", 8), ("a", 8), ("c", 20), ("a", 8)]
        for key, lines in sequence:
            got = line.access(key, lines, lines)
            expected = region.access(key, lines, lines)
            assert got.misses == expected.misses, (key, lines)


class TestSimulatorIntegration:
    def test_memory_system_accepts_line_model(self):
        mem = MemorySystem(default_config(), cache_model="line")
        result = mem.access("vertex", "vb", 4, 4, phase="geometry")
        assert result.l1_misses == 4

    def test_unknown_model_rejected(self):
        with pytest.raises(SimulationError):
            MemorySystem(default_config(), cache_model="quantum")

    def test_line_mode_close_to_region_mode(self, tiny_trace):
        region = CycleAccurateSimulator().simulate(tiny_trace)
        line = CycleAccurateSimulator(cache_model="line").simulate(tiny_trace)
        # Work counts are identical by construction.
        assert line.totals.fragments_shaded == region.totals.fragments_shaded
        # Memory behaviour agrees within the conflict-miss margin the
        # region model ignores.
        assert line.totals.l2_accesses == pytest.approx(
            region.totals.l2_accesses, rel=0.25
        )
        assert line.totals.dram_accesses == pytest.approx(
            region.totals.dram_accesses, rel=0.25
        )
