"""Tests for the functional simulator (MEGsim's input producer)."""

import numpy as np
import pytest

from repro.gpu.cycle_sim import CycleAccurateSimulator
from repro.gpu.functional_sim import FunctionalSimulator


@pytest.fixture(scope="module")
def functional() -> FunctionalSimulator:
    return FunctionalSimulator()


class TestProfileShape:
    def test_one_profile_per_frame(self, functional, tiny_trace):
        profile = functional.profile(tiny_trace)
        assert profile.frame_count == tiny_trace.frame_count
        assert [p.frame_id for p in profile.profiles] == list(range(6))

    def test_vector_lengths_match_shader_tables(self, functional, tiny_trace):
        profile = functional.profile(tiny_trace)
        assert profile.profiles[0].vs_executions.shape == (1,)
        assert profile.profiles[0].fs_executions.shape == (1,)

    def test_matrices(self, functional, tiny_trace):
        profile = functional.profile(tiny_trace)
        assert profile.vscv_matrix().shape == (6, 1)
        assert profile.fscv_matrix().shape == (6, 1)
        assert profile.prim_vector().shape == (6,)

    def test_weights_use_texture_weighting(self, functional, tiny_trace):
        profile = functional.profile(tiny_trace)
        fs = tiny_trace.fragment_shaders[0]
        assert profile.fragment_shader_weights[0] == fs.weighted_instruction_count
        vs = tiny_trace.vertex_shaders[0]
        assert profile.vertex_shader_weights[0] == vs.weighted_instruction_count


class TestAgreementWithCycleSim:
    """The paper's methodology requires the functional pass to count the
    same shader invocations the timing simulator executes."""

    def test_counts_match_cycle_sim(self, functional, tiny_trace):
        profile = functional.profile(tiny_trace)
        cycle = CycleAccurateSimulator().simulate(tiny_trace)
        for frame_profile, frame_stats in zip(
            profile.profiles, cycle.frame_stats
        ):
            assert frame_profile.vs_executions.sum() == frame_stats.vertices_shaded
            assert frame_profile.fs_executions.sum() == frame_stats.fragments_shaded
            assert frame_profile.primitives == frame_stats.primitives_binned
            assert frame_profile.vertex_instructions == frame_stats.vertex_instructions
            assert (
                frame_profile.fragment_instructions
                == frame_stats.fragment_instructions
            )

    def test_functional_is_faster(self, functional, tiny_trace):
        # Not a strict benchmark; just the structural claim that profiling
        # does far less work (no caches, no DRAM, no power model).  Each
        # side takes the best of three runs so background load on the test
        # machine cannot flip the comparison.
        profile_seconds = min(
            functional.profile(tiny_trace).elapsed_seconds for _ in range(3)
        )
        cycle_seconds = min(
            CycleAccurateSimulator().simulate(tiny_trace).elapsed_seconds
            for _ in range(3)
        )
        assert profile_seconds < cycle_seconds * 2


class TestFrameDifferences:
    def test_near_frames_execute_more_fragment_shaders(
        self, functional, tiny_trace
    ):
        profile = functional.profile(tiny_trace)
        near = profile.profiles[0].fs_executions.sum()
        far = profile.profiles[5].fs_executions.sum()
        assert near > far

    def test_vertex_counts_constant_in_tiny_trace(self, functional, tiny_trace):
        profile = functional.profile(tiny_trace)
        counts = {int(p.vs_executions.sum()) for p in profile.profiles}
        assert len(counts) == 1  # same mesh every frame
