"""Tests for the fast region-granular cache, including agreement with the
reference line-granular model on simple streams."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.gpu.cache import SetAssociativeCache
from repro.gpu.config import CacheConfig
from repro.gpu.region_cache import RegionCache


def make_cache(size=1024, line=64) -> RegionCache:
    return RegionCache(CacheConfig("t", size, line, associativity=2))


class TestBasics:
    def test_first_access_streams_in(self):
        cache = make_cache()
        result = cache.access("a", distinct_lines=4, total_accesses=10)
        assert result.misses == 4
        assert cache.stats.hits == 6

    def test_resident_region_hits(self):
        cache = make_cache()
        cache.access("a", 4, 10)
        result = cache.access("a", 4, 10)
        assert result.misses == 0
        assert cache.stats.hits == 16

    def test_oversized_region_streams_through(self):
        cache = make_cache(size=256)  # 4 lines
        result = cache.access("big", distinct_lines=100, total_accesses=100)
        assert result.misses == 100
        # Nothing retained: a second pass misses again.
        assert cache.access("big", 100, 100).misses == 100

    def test_oversized_write_region_writes_back(self):
        cache = make_cache(size=256)
        result = cache.access("big", 100, 100, write=True)
        assert result.writeback_lines == 100

    def test_growing_region_restreams(self):
        cache = make_cache()
        cache.access("a", 2, 2)
        result = cache.access("a", 4, 4)
        assert result.misses == 4

    def test_shrunk_access_of_resident_region_hits(self):
        cache = make_cache()
        cache.access("a", 8, 8)
        assert cache.access("a", 4, 4).misses == 0

    def test_total_accesses_floored_at_distinct(self):
        cache = make_cache()
        cache.access("a", 4, 1)  # caller under-counted
        assert cache.stats.accesses == 4

    @pytest.mark.parametrize("kwargs", [
        {"distinct_lines": 0, "total_accesses": 1},
        {"distinct_lines": 1, "total_accesses": 0},
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(SimulationError):
            make_cache().access("a", **kwargs)


class TestCapacityAndLRU:
    def test_lru_region_evicted(self):
        cache = make_cache(size=1024)  # 16 lines
        cache.access("a", 8, 8)
        cache.access("b", 8, 8)
        cache.access("c", 8, 8)  # evicts "a"
        assert cache.access("b", 8, 8).misses in (0, 8)  # b may also go
        assert cache.access("a", 8, 8).misses == 8

    def test_dirty_eviction_generates_writebacks(self):
        cache = make_cache(size=1024)
        cache.access("a", 8, 8, write=True)
        cache.access("b", 8, 8)
        result = cache.access("c", 8, 8)
        assert result.writeback_lines == 8

    def test_resident_lines_bounded(self):
        cache = make_cache(size=1024)
        for key in range(20):
            cache.access(key, 5, 5)
        assert cache.resident_lines <= cache.capacity_lines

    def test_invalidate(self):
        cache = make_cache()
        cache.access("a", 4, 4, write=True)
        assert cache.invalidate("a") == 4
        assert cache.invalidate("a") == 0

    def test_invalidate_clean_region_no_writeback(self):
        cache = make_cache()
        cache.access("a", 4, 4)
        assert cache.invalidate("a") == 0

    def test_flush(self):
        cache = make_cache()
        cache.access("a", 4, 4, write=True)
        cache.access("b", 2, 2)
        assert cache.flush() == 4
        assert cache.resident_lines == 0


class TestAgreementWithReferenceModel:
    """The region model must reproduce the line model's miss counts on
    streams made of whole-region sweeps (its design domain)."""

    def _line_model_region_sweep(self, cache, base, lines):
        misses = 0
        for i in range(lines):
            misses += cache.access(base + i * 64)
        return misses

    def test_repeated_small_region(self):
        line_cache = SetAssociativeCache(CacheConfig("l", 2048, 64, 32))
        region_cache = make_cache(size=2048)
        for _ in range(5):
            line_misses = self._line_model_region_sweep(line_cache, 0, 8)
            region_misses = region_cache.access("r", 8, 8).misses
            assert line_misses == region_misses

    def test_streaming_large_region(self):
        line_cache = SetAssociativeCache(CacheConfig("l", 512, 64, 8))
        region_cache = make_cache(size=512)
        for _ in range(3):
            line_misses = self._line_model_region_sweep(line_cache, 0, 64)
            region_misses = region_cache.access("big", 64, 64).misses
            assert line_misses == region_misses  # both stream every pass

    def test_two_alternating_regions_that_fit(self):
        line_cache = SetAssociativeCache(CacheConfig("l", 2048, 64, 32))
        region_cache = make_cache(size=2048)
        for _ in range(4):
            for base, key in ((0, "a"), (1 << 20, "b")):
                line_misses = self._line_model_region_sweep(line_cache, base, 8)
                region_misses = region_cache.access(key, 8, 8).misses
                assert line_misses == region_misses

    @given(
        sweep_keys=st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=30)
    )
    @settings(max_examples=30)
    def test_fully_associative_agreement(self, sweep_keys):
        """With regions that all fit, misses agree with a fully associative
        line cache under the same sweep sequence."""
        bases = {"a": 0, "b": 1 << 20, "c": 2 << 20}
        lines_per_region = 4
        line_cache = SetAssociativeCache(CacheConfig("l", 768, 64, 12))
        region_cache = make_cache(size=768)  # 12 lines = 3 regions max
        for key in sweep_keys:
            expected = self._line_model_region_sweep(
                line_cache, bases[key], lines_per_region
            )
            actual = region_cache.access(key, lines_per_region, lines_per_region)
            assert actual.misses == expected


class TestInvariants:
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["a", "b", "c", "d"]),
                st.integers(min_value=1, max_value=30),
                st.booleans(),
            ),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=50)
    def test_counters_consistent(self, ops):
        cache = make_cache(size=1024)
        for key, lines, write in ops:
            cache.access(key, lines, lines * 2, write=write)
        stats = cache.stats
        assert stats.hits + stats.misses == stats.accesses
        assert cache.resident_lines <= cache.capacity_lines
