"""Tests for CSV export and power reporting."""

import csv

import pytest

from repro.gpu.cycle_sim import CycleAccurateSimulator
from repro.gpu.stats import FrameStats


class TestCSVExport:
    def test_csv_round_trip(self, tiny_trace, tmp_path):
        result = CycleAccurateSimulator().simulate(tiny_trace)
        path = tmp_path / "frames.csv"
        result.to_csv(path)
        with path.open() as stream:
            rows = list(csv.DictReader(stream))
        assert len(rows) == tiny_trace.frame_count
        for row, stats in zip(rows, result.frame_stats):
            assert float(row["cycles"]) == pytest.approx(stats.cycles)
            assert float(row["dram_accesses"]) == pytest.approx(
                stats.dram_accesses
            )
            assert int(row["frame_id"]) == int(float(row["frame_id"]))

    def test_subset_export(self, tiny_trace, tmp_path):
        result = CycleAccurateSimulator().simulate(tiny_trace, frame_ids=[1, 3])
        path = tmp_path / "subset.csv"
        result.to_csv(path)
        with path.open() as stream:
            rows = list(csv.DictReader(stream))
        assert [int(r["frame_id"]) for r in rows] == [1, 3]


class TestPowerWatts:
    def test_zero_cycles(self):
        assert FrameStats().average_power_watts() == 0.0

    def test_known_value(self):
        # 600 MHz, 6e8 cycles = 1 second; 1 J of energy = 1 W.
        stats = FrameStats(cycles=6e8, energy_raster=1e12)
        assert stats.average_power_watts(600.0) == pytest.approx(1.0)

    def test_realistic_magnitude(self, tiny_trace):
        """A mobile GPU dissipates on the order of a watt."""
        totals = CycleAccurateSimulator().simulate(tiny_trace).totals
        watts = totals.average_power_watts()
        assert 0.05 < watts < 20.0
