"""Tests for the Table I configuration objects."""

import pytest

from repro.errors import ConfigError
from repro.gpu.config import (
    CacheConfig,
    DRAMConfig,
    GPUConfig,
    QueueConfig,
    default_config,
)


class TestCacheConfig:
    def test_lines_and_sets(self):
        cache = CacheConfig("t", 8 * 1024, line_bytes=64, associativity=2)
        assert cache.lines == 128
        assert cache.sets == 64

    def test_size_not_multiple_of_line(self):
        with pytest.raises(ConfigError):
            CacheConfig("t", 1000, line_bytes=64)

    def test_lines_not_divisible_by_associativity(self):
        with pytest.raises(ConfigError):
            CacheConfig("t", 64 * 3, line_bytes=64, associativity=2)

    @pytest.mark.parametrize("kwargs", [
        {"size_bytes": 0},
        {"associativity": 0},
        {"banks": 0},
        {"latency_cycles": 0},
    ])
    def test_invalid_values(self, kwargs):
        params = dict(name="t", size_bytes=4096)
        params.update(kwargs)
        with pytest.raises(ConfigError):
            CacheConfig(**params)


class TestDRAMConfig:
    def test_line_transfer_cycles(self):
        assert DRAMConfig().line_transfer_cycles == 16  # 64B at 4B/cycle

    def test_latency_ordering_enforced(self):
        with pytest.raises(ConfigError):
            DRAMConfig(min_latency_cycles=200, max_latency_cycles=100)

    def test_row_multiple_of_line(self):
        with pytest.raises(ConfigError):
            DRAMConfig(row_bytes=100)


class TestQueueConfig:
    def test_capacity(self):
        assert QueueConfig("q", 16, 136).capacity_bytes == 16 * 136

    def test_invalid(self):
        with pytest.raises(ConfigError):
            QueueConfig("q", 0, 136)


class TestGPUConfig:
    def test_table1_defaults(self):
        config = default_config()
        assert config.frequency_mhz == 600
        assert config.screen_width == 1440
        assert config.screen_height == 720
        assert config.tile_size == 32
        assert config.vertex_processors == 4
        assert config.fragment_processors == 4
        assert config.vertex_cache.size_bytes == 4 * 1024
        assert config.texture_cache.size_bytes == 8 * 1024
        assert config.tile_cache.size_bytes == 32 * 1024
        assert config.l2_cache.size_bytes == 256 * 1024
        assert config.l2_cache.banks == 8
        assert config.dram.size_bytes == 1 << 30
        assert config.dram.banks == 8
        assert config.vertex_input_queue.entries == 16
        assert config.fragment_queue.entries == 64
        assert config.color_queue.entry_bytes == 24

    def test_tile_grid(self):
        config = default_config()
        assert config.tiles_x == 45  # 1440 / 32
        assert config.tiles_y == 23  # ceil(720 / 32)
        assert config.total_tiles == 45 * 23
        assert config.tile_pixels == 1024
        assert config.screen_pixels == 1440 * 720

    def test_partial_tiles_counted(self):
        config = GPUConfig(screen_width=100, screen_height=100, tile_size=32)
        assert config.tiles_x == 4
        assert config.tiles_y == 4

    @pytest.mark.parametrize("kwargs", [
        {"frequency_mhz": 0},
        {"screen_width": 0},
        {"tile_size": 0},
        {"vertex_processors": 0},
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            GPUConfig(**kwargs)
