"""Tests for the shared per-frame work model (geometry, coverage, early-Z)."""

import pytest

from repro.gpu.config import default_config
from repro.gpu.workmodel import compute_draw_call_work, compute_frame_work
from repro.scene.draw import DrawCall
from repro.scene.frame import Camera, Frame
from repro.scene.vectors import Vec3

CONFIG = default_config()


def frame_with(draw_calls, camera=None) -> Frame:
    return Frame(frame_id=0, camera=camera or Camera(), draw_calls=tuple(draw_calls))


class TestSingleDrawCall:
    def test_visible_object_generates_fragments(self, draw_call):
        work = compute_frame_work(frame_with([draw_call]), CONFIG)
        dcw = work.draw_work[0]
        assert dcw.fragments_generated > 0
        assert dcw.fragments_shaded == dcw.fragments_generated  # nothing in front
        assert dcw.tiles_covered >= 1
        assert dcw.prim_tile_pairs >= dcw.primitives_binned > 0

    def test_vertices_always_shaded(self, simple_mesh, vertex_shader, fragment_shader):
        behind = DrawCall(
            mesh=simple_mesh,
            vertex_shader=vertex_shader,
            fragment_shader=fragment_shader,
            texture_ids=(0,),
            position=Vec3(0, 0, 50.0),  # behind the camera
        )
        work = compute_frame_work(frame_with([behind]), CONFIG)
        dcw = work.draw_work[0]
        assert dcw.vertices_shaded == behind.submitted_vertices
        assert dcw.primitives_clipped == behind.submitted_primitives
        assert dcw.fragments_generated == 0
        assert dcw.tiles_covered == 0

    def test_offscreen_lateral_object_fully_clipped(
        self, simple_mesh, vertex_shader, fragment_shader
    ):
        offscreen = DrawCall(
            mesh=simple_mesh,
            vertex_shader=vertex_shader,
            fragment_shader=fragment_shader,
            texture_ids=(0,),
            position=Vec3(1000.0, 0, -10.0),
        )
        work = compute_frame_work(frame_with([offscreen]), CONFIG)
        assert work.draw_work[0].fragments_generated == 0

    def test_backface_culling_only_for_closed_meshes(
        self, simple_mesh, vertex_shader, fragment_shader
    ):
        import dataclasses

        flat_mesh = dataclasses.replace(simple_mesh, closed_surface=False)
        closed_dc = DrawCall(
            mesh=simple_mesh, vertex_shader=vertex_shader,
            fragment_shader=fragment_shader, texture_ids=(0,),
            position=Vec3(0, 0, -10),
        )
        flat_dc = DrawCall(
            mesh=flat_mesh, vertex_shader=vertex_shader,
            fragment_shader=fragment_shader, texture_ids=(0,),
            position=Vec3(0, 0, -10),
        )
        closed_work = compute_frame_work(frame_with([closed_dc]), CONFIG)
        flat_work = compute_frame_work(frame_with([flat_dc]), CONFIG)
        assert closed_work.draw_work[0].primitives_backface_culled > 0
        assert flat_work.draw_work[0].primitives_backface_culled == 0
        assert (
            flat_work.draw_work[0].primitives_binned
            > closed_work.draw_work[0].primitives_binned
        )

    def test_overdraw_scales_fragments(
        self, simple_mesh, vertex_shader, fragment_shader
    ):
        def dc(overdraw):
            return DrawCall(
                mesh=simple_mesh, vertex_shader=vertex_shader,
                fragment_shader=fragment_shader, texture_ids=(0,),
                position=Vec3(0, 0, -10), overdraw=overdraw,
            )
        single = compute_frame_work(frame_with([dc(1.0)]), CONFIG).draw_work[0]
        double = compute_frame_work(frame_with([dc(2.0)]), CONFIG).draw_work[0]
        assert double.fragments_generated == pytest.approx(
            2 * single.fragments_generated, rel=0.01
        )

    def test_instances_scale_work(
        self, simple_mesh, vertex_shader, fragment_shader
    ):
        def dc(instances):
            return DrawCall(
                mesh=simple_mesh, vertex_shader=vertex_shader,
                fragment_shader=fragment_shader, texture_ids=(0,),
                position=Vec3(0, 0, -20), instance_count=instances,
            )
        one = compute_frame_work(frame_with([dc(1)]), CONFIG).draw_work[0]
        three = compute_frame_work(frame_with([dc(3)]), CONFIG).draw_work[0]
        assert three.vertices_shaded == 3 * one.vertices_shaded
        assert three.fragments_generated == pytest.approx(
            3 * one.fragments_generated, rel=0.01
        )

    def test_footprint_bounded_by_screen(
        self, simple_mesh, vertex_shader, fragment_shader
    ):
        huge = DrawCall(
            mesh=simple_mesh, vertex_shader=vertex_shader,
            fragment_shader=fragment_shader, texture_ids=(0,),
            position=Vec3(0, 0, -1.0), scale=100.0,
        )
        work = compute_frame_work(frame_with([huge]), CONFIG)
        assert work.draw_work[0].footprint_pixels <= CONFIG.screen_pixels
        assert work.draw_work[0].tiles_covered <= CONFIG.total_tiles


class TestOcclusion:
    def _pair(self, simple_mesh, vertex_shader, fragment_shader,
              front_opaque=True):
        front = DrawCall(
            mesh=simple_mesh, vertex_shader=vertex_shader,
            fragment_shader=fragment_shader, texture_ids=(0,),
            position=Vec3(0, 0, -5), scale=3.0, depth_layer=0,
            opaque=front_opaque,
        )
        back = DrawCall(
            mesh=simple_mesh, vertex_shader=vertex_shader,
            fragment_shader=fragment_shader, texture_ids=(0,),
            position=Vec3(0, 0, -10), scale=3.0, depth_layer=1,
        )
        return front, back

    def test_opaque_front_occludes_back(
        self, simple_mesh, vertex_shader, fragment_shader
    ):
        front, back = self._pair(simple_mesh, vertex_shader, fragment_shader)
        work = compute_frame_work(frame_with([back, front]), CONFIG)
        back_work = next(
            w for w in work.draw_work if w.draw_call.depth_layer == 1
        )
        assert back_work.fragments_occluded > 0
        assert back_work.fragments_shaded < back_work.fragments_generated

    def test_transparent_front_does_not_occlude(
        self, simple_mesh, vertex_shader, fragment_shader
    ):
        front, back = self._pair(
            simple_mesh, vertex_shader, fragment_shader, front_opaque=False
        )
        work = compute_frame_work(frame_with([back, front]), CONFIG)
        back_work = next(
            w for w in work.draw_work if w.draw_call.depth_layer == 1
        )
        assert back_work.fragments_occluded == 0

    def test_depth_order_not_submission_order(
        self, simple_mesh, vertex_shader, fragment_shader
    ):
        front, back = self._pair(simple_mesh, vertex_shader, fragment_shader)
        forward = compute_frame_work(frame_with([front, back]), CONFIG)
        reverse = compute_frame_work(frame_with([back, front]), CONFIG)
        assert forward.fragments_shaded == reverse.fragments_shaded


class TestFrameAggregates:
    def test_aggregates_sum_draw_work(self, draw_call):
        work = compute_frame_work(frame_with([draw_call, draw_call]), CONFIG)
        assert work.vertices_shaded == sum(
            w.vertices_shaded for w in work.draw_work
        )
        assert work.fragments_generated == sum(
            w.fragments_generated for w in work.draw_work
        )

    def test_active_tiles_bounded(self, draw_call):
        work = compute_frame_work(frame_with([draw_call] * 10), CONFIG)
        assert 0 < work.active_tiles <= CONFIG.total_tiles

    def test_empty_frame(self):
        work = compute_frame_work(frame_with([]), CONFIG)
        assert work.vertices_shaded == 0
        assert work.active_tiles == 0

    def test_deterministic(self, draw_call):
        frame = frame_with([draw_call] * 3)
        first = compute_frame_work(frame, CONFIG)
        second = compute_frame_work(frame, CONFIG)
        assert first.fragments_shaded == second.fragments_shaded
        assert first.prim_tile_pairs == second.prim_tile_pairs
