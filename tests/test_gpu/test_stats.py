"""Tests for FrameStats merging, scaling and derived metrics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.cache import CacheStats
from repro.gpu.dram import DRAMStats
from repro.gpu.stats import KEY_METRICS, FrameStats


def sample_stats(scale: float = 1.0) -> FrameStats:
    stats = FrameStats(
        cycles=1000.0 * scale,
        geometry_cycles=100.0 * scale,
        tiling_cycles=50.0 * scale,
        raster_cycles=850.0 * scale,
        vertex_instructions=400.0 * scale,
        fragment_instructions=3600.0 * scale,
        vertices_shaded=100.0 * scale,
        fragments_shaded=900.0 * scale,
        energy_geometry=10.0 * scale,
        energy_tiling=15.0 * scale,
        energy_raster=75.0 * scale,
    )
    stats.l2_cache = CacheStats(
        accesses=200 * scale, hits=150 * scale, misses=50 * scale
    )
    stats.tile_cache = CacheStats(accesses=80 * scale, hits=60 * scale,
                                  misses=20 * scale)
    stats.dram = DRAMStats(read_accesses=40 * scale, write_accesses=10 * scale)
    return stats


class TestKeyMetrics:
    def test_names(self):
        assert KEY_METRICS == (
            "cycles", "dram_accesses", "l2_accesses", "tile_cache_accesses"
        )

    def test_values(self):
        stats = sample_stats()
        metrics = stats.key_metrics()
        assert metrics["cycles"] == 1000.0
        assert metrics["dram_accesses"] == 50
        assert metrics["l2_accesses"] == 200
        assert metrics["tile_cache_accesses"] == 80

    def test_ipc(self):
        assert sample_stats().ipc == pytest.approx(4.0)

    def test_ipc_zero_cycles(self):
        assert FrameStats().ipc == 0.0


class TestPowerFractions:
    def test_order_is_geometry_raster_tiling(self):
        g, r, t = sample_stats().power_fractions()
        assert (g, r, t) == (0.10, 0.75, 0.15)

    def test_fractions_sum_to_one(self):
        assert sum(sample_stats().power_fractions()) == pytest.approx(1.0)

    def test_empty_falls_back_to_paper_weights(self):
        assert FrameStats().power_fractions() == (0.108, 0.745, 0.147)


class TestMergeAndScale:
    def test_merge_adds_everything(self):
        a = sample_stats()
        a.merge(sample_stats())
        assert a.cycles == 2000.0
        assert a.l2_cache.accesses == 400
        assert a.dram.total_accesses == 100
        assert a.energy_raster == 150.0

    def test_scaled(self):
        scaled = sample_stats().scaled(3.0)
        assert scaled.cycles == 3000.0
        assert scaled.l2_cache.accesses == 600
        assert scaled.dram.read_accesses == 120
        assert scaled.fragment_instructions == pytest.approx(10800.0)

    def test_scaling_preserves_rates(self):
        base = sample_stats()
        scaled = base.scaled(7.0)
        assert scaled.ipc == pytest.approx(base.ipc)
        assert scaled.l2_cache.hit_rate == pytest.approx(base.l2_cache.hit_rate)
        assert scaled.power_fractions() == pytest.approx(base.power_fractions())

    def test_scaled_does_not_mutate_original(self):
        base = sample_stats()
        base.scaled(2.0)
        assert base.cycles == 1000.0

    def test_total(self):
        total = FrameStats.total([sample_stats(), sample_stats(2.0)])
        assert total.cycles == 3000.0

    def test_total_empty(self):
        assert FrameStats.total([]).cycles == 0.0

    @given(factor=st.floats(min_value=0.0, max_value=1e4, allow_nan=False))
    @settings(max_examples=30)
    def test_scale_then_merge_equals_sum(self, factor):
        merged = FrameStats.total([sample_stats().scaled(factor)])
        assert merged.cycles == pytest.approx(1000.0 * factor)
        assert merged.l2_cache.accesses == pytest.approx(200 * factor)
