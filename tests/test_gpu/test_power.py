"""Tests for the per-event energy model and phase attribution."""

import pytest

from repro.gpu.config import default_config
from repro.gpu.hierarchy import MemorySystem
from repro.gpu.power import EnergyParams, PowerModel
from repro.gpu.stats import FrameStats


@pytest.fixture
def mem() -> MemorySystem:
    return MemorySystem(default_config())


class TestAttribution:
    def test_vertex_work_lands_in_geometry(self, mem):
        stats = FrameStats(vertex_instructions=1000, vertices_shaded=100,
                           cycles=1.0)
        PowerModel().attribute_frame(stats, mem)
        assert stats.energy_geometry > 0
        assert stats.energy_geometry > stats.energy_tiling

    def test_fragment_work_lands_in_raster(self, mem):
        stats = FrameStats(fragment_instructions=1000, fragments_shaded=100,
                           fragments_generated=120, cycles=1.0)
        PowerModel().attribute_frame(stats, mem)
        assert stats.energy_raster > stats.energy_geometry
        assert stats.energy_raster > stats.energy_tiling

    def test_binning_lands_in_tiling(self, mem):
        stats = FrameStats(prim_tile_pairs=1000, cycles=1.0)
        PowerModel().attribute_frame(stats, mem)
        assert stats.energy_tiling > stats.energy_geometry

    def test_shared_traffic_follows_phase_tags(self, mem):
        mem.access("tile", "plist", 100, 100, phase="tiling", write=True)
        stats = FrameStats(cycles=1.0)
        PowerModel().attribute_frame(stats, mem)
        # All shared L2/DRAM traffic was tagged tiling.
        assert stats.energy_tiling > 0
        assert stats.energy_tiling > stats.energy_geometry

    def test_energy_linear_in_events(self, mem):
        small = FrameStats(fragment_instructions=1000, cycles=0.0)
        large = FrameStats(fragment_instructions=2000, cycles=0.0)
        PowerModel().attribute_frame(small, mem)
        PowerModel().attribute_frame(large, mem)
        assert large.energy_raster == pytest.approx(2 * small.energy_raster)

    def test_custom_params(self, mem):
        params = EnergyParams(fragment_instruction=100.0)
        stats = FrameStats(fragment_instructions=10, cycles=0.0)
        PowerModel(params).attribute_frame(stats, mem)
        assert stats.energy_raster == pytest.approx(1000.0)

    def test_leakage_scales_with_cycles(self, mem):
        stats = FrameStats(cycles=1000.0)
        PowerModel().attribute_frame(stats, mem)
        params = EnergyParams()
        assert stats.energy_geometry == pytest.approx(
            1000.0 * params.leak_geometry_per_cycle
        )
