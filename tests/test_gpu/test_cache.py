"""Tests for the reference line-granular set-associative cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.gpu.cache import CacheStats, SetAssociativeCache
from repro.gpu.config import CacheConfig


def make_cache(size=1024, line=64, assoc=2) -> SetAssociativeCache:
    return SetAssociativeCache(CacheConfig("t", size, line, assoc))


class TestBasicBehavior:
    def test_first_access_misses(self):
        cache = make_cache()
        assert cache.access(0) == 1
        assert cache.stats.misses == 1

    def test_second_access_hits(self):
        cache = make_cache()
        cache.access(0)
        assert cache.access(0) == 0
        assert cache.stats.hits == 1

    def test_same_line_different_bytes_hit(self):
        cache = make_cache(line=64)
        cache.access(0)
        assert cache.access(63) == 0

    def test_adjacent_line_misses(self):
        cache = make_cache(line=64)
        cache.access(0)
        assert cache.access(64) == 1

    def test_count_batches_accesses(self):
        cache = make_cache()
        misses = cache.access(0, count=10)
        assert misses == 1
        assert cache.stats.accesses == 10
        assert cache.stats.hits == 9

    def test_negative_address_rejected(self):
        with pytest.raises(SimulationError):
            make_cache().access(-64)

    def test_zero_count_rejected(self):
        with pytest.raises(SimulationError):
            make_cache().access(0, count=0)


class TestLRUReplacement:
    def test_lru_eviction_within_set(self):
        # 2-way cache with 8 sets of 64B lines (1 KiB): lines 0, 8, 16 map
        # to set 0.
        cache = make_cache(size=1024, line=64, assoc=2)
        cache.access(0 * 64)
        cache.access(8 * 64)
        cache.access(16 * 64)  # evicts line 0 (LRU)
        assert not cache.contains(0 * 64)
        assert cache.contains(8 * 64)
        assert cache.contains(16 * 64)

    def test_touch_refreshes_lru(self):
        cache = make_cache(size=1024, line=64, assoc=2)
        cache.access(0 * 64)
        cache.access(8 * 64)
        cache.access(0 * 64)       # line 0 becomes MRU
        cache.access(16 * 64)      # evicts line 8 now
        assert cache.contains(0 * 64)
        assert not cache.contains(8 * 64)


class TestWriteback:
    def test_dirty_eviction_counts_writeback(self):
        cache = make_cache(size=1024, line=64, assoc=2)
        cache.access(0 * 64, write=True)
        cache.access(8 * 64)
        cache.access(16 * 64)  # evicts dirty line 0
        assert cache.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        cache = make_cache(size=1024, line=64, assoc=2)
        cache.access(0 * 64)
        cache.access(8 * 64)
        cache.access(16 * 64)
        assert cache.stats.writebacks == 0

    def test_flush_writes_back_dirty_lines(self):
        cache = make_cache()
        cache.access(0, write=True)
        cache.access(64, write=True)
        cache.access(128)
        assert cache.flush() == 2
        assert cache.resident_lines == 0


class TestStats:
    def test_hit_rate(self):
        stats = CacheStats(accesses=10, hits=7, misses=3)
        assert stats.hit_rate == pytest.approx(0.7)

    def test_hit_rate_empty(self):
        assert CacheStats().hit_rate == 0.0

    def test_merge(self):
        a = CacheStats(accesses=10, hits=7, misses=3, writebacks=1)
        b = CacheStats(accesses=5, hits=2, misses=3, writebacks=2)
        a.merge(b)
        assert (a.accesses, a.hits, a.misses, a.writebacks) == (15, 9, 6, 3)


class TestInvariants:
    @given(
        addresses=st.lists(
            st.integers(min_value=0, max_value=4096), min_size=1, max_size=200
        )
    )
    @settings(max_examples=50)
    def test_hits_plus_misses_equals_accesses(self, addresses):
        cache = make_cache(size=512, line=64, assoc=2)
        for addr in addresses:
            cache.access(addr)
        stats = cache.stats
        assert stats.hits + stats.misses == stats.accesses

    @given(
        addresses=st.lists(
            st.integers(min_value=0, max_value=8192), min_size=1, max_size=200
        )
    )
    @settings(max_examples=50)
    def test_residency_bounded_by_capacity(self, addresses):
        cache = make_cache(size=512, line=64, assoc=2)
        for addr in addresses:
            cache.access(addr)
        assert cache.resident_lines <= cache.config.lines

    @given(
        addresses=st.lists(
            st.integers(min_value=0, max_value=64 * 7), min_size=1, max_size=100
        )
    )
    @settings(max_examples=50)
    def test_working_set_within_capacity_never_remisses(self, addresses):
        """Once every line of a small working set is resident, no more misses."""
        cache = make_cache(size=1024, line=64, assoc=2)  # 16 lines, 8 distinct used
        for addr in addresses:
            cache.access(addr)
        distinct = {a // 64 for a in addresses}
        # Fully associative would guarantee this; with 8 sets and <= 7
        # distinct lines mapping at most 2 per set... not guaranteed, so
        # assert the weaker invariant: misses <= accesses and misses >=
        # compulsory misses.
        assert cache.stats.misses >= len(distinct)
