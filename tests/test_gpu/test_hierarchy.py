"""Tests for the L1 -> L2 -> DRAM memory system wiring."""

import pytest

from repro.errors import SimulationError
from repro.gpu.config import default_config
from repro.gpu.hierarchy import MemorySystem


@pytest.fixture
def mem() -> MemorySystem:
    return MemorySystem(default_config())


class TestPropagation:
    def test_l1_hit_stops_at_l1(self, mem):
        mem.access("vertex", "vb0", 4, 4, phase="geometry")
        before_l2 = mem.l2.stats.accesses
        result = mem.access("vertex", "vb0", 4, 4, phase="geometry")
        assert result.l1_misses == 0
        assert mem.l2.stats.accesses == before_l2

    def test_l1_miss_goes_to_l2(self, mem):
        result = mem.access("vertex", "vb0", 4, 8, phase="geometry")
        assert result.l1_misses == 4
        assert mem.l2.stats.accesses == 4

    def test_l2_miss_goes_to_dram(self, mem):
        result = mem.access("vertex", "vb0", 4, 4, phase="geometry")
        assert result.l2_misses == 4
        assert mem.dram.stats.read_accesses == 4

    def test_l2_resident_region_serves_second_l1(self, mem):
        # Texture cache 0 streams the footprint; cache 1 misses in L1 but
        # hits the now-resident region in the L2.
        mem.access("texture", "tex0", 16, 16, phase="raster", l1_index=0)
        dram_before = mem.dram.stats.total_accesses
        result = mem.access("texture", "tex0", 16, 16, phase="raster", l1_index=1)
        assert result.l1_misses == 16
        assert result.l2_misses == 0
        assert mem.dram.stats.total_accesses == dram_before

    def test_latency_grows_with_depth(self, mem):
        cold = mem.access("vertex", "vb0", 2, 2, phase="geometry")
        warm = mem.access("vertex", "vb0", 2, 2, phase="geometry")
        assert cold.latency_cycles > warm.latency_cycles

    def test_unknown_l1_rejected(self, mem):
        with pytest.raises(SimulationError):
            mem.access("l3", "x", 1, 1, phase="raster")

    def test_unknown_phase_rejected(self, mem):
        with pytest.raises(SimulationError):
            mem.access("vertex", "x", 1, 1, phase="compute")


class TestPhaseAttribution:
    def test_traffic_tagged_by_phase(self, mem):
        mem.access("vertex", "vb0", 4, 4, phase="geometry")
        mem.access("tile", "plist0", 8, 8, phase="tiling", write=True)
        assert mem.l2_accesses_by_phase["geometry"] == 4
        assert mem.l2_accesses_by_phase["tiling"] == 8
        assert mem.l2_accesses_by_phase["raster"] == 0
        assert mem.dram_lines_by_phase["geometry"] == 4


class TestFramebufferPath:
    def test_small_flush_stays_in_l2(self, mem):
        result = mem.write_through_l2("fb", 64, phase="raster")
        assert result.dram_lines == 0  # 64 lines fit in the 4096-line L2

    def test_large_flush_streams_to_dram(self, mem):
        lines = 10000  # > L2 capacity
        result = mem.write_through_l2("fb", lines, phase="raster")
        assert result.dram_lines == lines
        assert mem.dram.stats.write_accesses == lines

    def test_invalid_lines(self, mem):
        with pytest.raises(SimulationError):
            mem.write_through_l2("fb", 0, phase="raster")


class TestOnChipBuffers:
    def test_tally(self, mem):
        mem.tally_on_chip("color", 100)
        mem.tally_on_chip("depth", 50)
        assert mem.color_buffer.accesses == 100
        assert mem.depth_buffer.accesses == 50
        assert mem.color_buffer.hit_rate == 1.0

    def test_unknown_buffer(self, mem):
        with pytest.raises(SimulationError):
            mem.tally_on_chip("stencil", 1)

    def test_negative(self, mem):
        with pytest.raises(SimulationError):
            mem.tally_on_chip("color", -1)


class TestTextureAggregation:
    def test_texture_stats_sums_all_caches(self, mem):
        for index in range(4):
            mem.access("texture", "t", 4, 10, phase="raster", l1_index=index)
        total = mem.texture_stats()
        assert total.accesses == 40
