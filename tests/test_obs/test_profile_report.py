"""`render_report`: the --profile text summary's histogram section."""

from __future__ import annotations

from repro.obs import collecting, observe, render_report, span


def _collector_with_histograms(count):
    with collecting() as collector:
        with span("work"):
            for index in range(count):
                for value in (1.0, 2.0, 4.0, 100.0):
                    observe(f"metric.{index:03d}", value)
    return collector


def test_histogram_section_quotes_p95(capsys):
    report = render_report(_collector_with_histograms(1))
    (header,) = [l for l in report.splitlines() if l.startswith("histogram")]
    assert header.split() == [
        "histogram", "count", "mean", "p50", "p90", "p95", "p99", "max",
    ]
    (row,) = [l for l in report.splitlines() if l.startswith("metric.000")]
    fields = row.split()
    assert fields[1] == "4"  # count
    assert fields[-1] == "100"  # exact maximum
    # p95 over 4 samples lands on the top sample by nearest rank.
    assert fields[5] == "100"


def test_histogram_section_truncates_past_top():
    report = render_report(_collector_with_histograms(7), top=5)
    shown = [l for l in report.splitlines() if l.startswith("metric.")]
    assert len(shown) == 5
    assert "... 2 more histogram(s)" in report


def test_no_histograms_no_section():
    with collecting() as collector:
        with span("work"):
            pass
    assert "histogram" not in render_report(collector)
