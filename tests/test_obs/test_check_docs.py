"""The retired ``scripts/check_docs.py`` shim: deprecation + delegation.

The real doc checks now live in ``repro.lint`` (rules MEG007/MEG008/
MEG009, covered by ``tests/test_lint/``); this file only pins the shim's
contract — it warns, it delegates, and it still exits 0 on a clean tree.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
SCRIPT = REPO_ROOT / "scripts" / "check_docs.py"


def run_shim() -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(SCRIPT)],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )


class TestDeprecationShim:
    def test_exits_zero_on_clean_tree(self):
        result = run_shim()
        assert result.returncode == 0, result.stdout + result.stderr

    def test_prints_deprecation_pointer(self):
        result = run_shim()
        assert "DEPRECATED" in result.stderr
        assert "megsim lint" in result.stderr

    def test_points_at_the_replacing_rules(self):
        result = run_shim()
        for rule_id in ("MEG007", "MEG008", "MEG009"):
            assert rule_id in result.stderr
