"""The docs lint (scripts/check_docs.py) passes and catches regressions."""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

SCRIPT = (
    Path(__file__).resolve().parent.parent.parent / "scripts" / "check_docs.py"
)


@pytest.fixture(scope="module")
def check_docs():
    spec = importlib.util.spec_from_file_location("check_docs", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestRepositoryIsClean:
    def test_lint_passes(self, check_docs, capsys):
        assert check_docs.main() == 0
        assert "OK" in capsys.readouterr().out

    def test_no_failures_collected(self, check_docs):
        assert check_docs.collect_failures() == []


class TestLintMechanics:
    def test_exported_names_reads_all(self, check_docs, tmp_path):
        module = tmp_path / "mod.py"
        module.write_text('__all__ = ["alpha", "beta"]\n')
        assert check_docs.exported_names(module) == ["alpha", "beta"]

    def test_exported_names_requires_all(self, check_docs, tmp_path):
        module = tmp_path / "mod.py"
        module.write_text("x = 1\n")
        with pytest.raises(ValueError):
            check_docs.exported_names(module)

    def test_python_fences_extracted(self, check_docs):
        text = "intro\n```python\nx = 1\n```\n```\nnot python\n```\n"
        assert check_docs.python_fences(text) == ["x = 1\n"]

    def test_broken_fence_detected(self, check_docs):
        fences = check_docs.python_fences("```python\ndef broken(:\n```\n")
        assert fences
        with pytest.raises(SyntaxError):
            compile(fences[0], "fence", "exec")

    def test_obs_exports_are_covered(self, check_docs):
        """Every repro.obs export is in docs/api.md (the PR's contract)."""
        api_text = (
            SCRIPT.parent.parent / "docs" / "api.md"
        ).read_text()
        obs_init = (
            SCRIPT.parent.parent / "src" / "repro" / "obs" / "__init__.py"
        )
        for name in check_docs.exported_names(obs_init):
            assert name in api_text, name
