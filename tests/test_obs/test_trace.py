"""Span nesting, timing monotonicity, counters/gauges, threading."""

from __future__ import annotations

import threading
import time

import pytest

from repro.obs import (
    Collector,
    collecting,
    counter,
    gauge,
    get_collector,
    set_collector,
    span,
)


class TestSpanNesting:
    def test_parent_child_structure(self):
        with collecting() as collector:
            with span("outer", alias="bbr1"):
                with span("inner"):
                    pass
                with span("inner"):
                    pass
        assert [root.name for root in collector.roots] == ["outer"]
        outer = collector.roots[0]
        assert [child.name for child in outer.children] == ["inner", "inner"]
        assert all(c.parent_id == outer.span_id for c in outer.children)
        assert outer.attrs == {"alias": "bbr1"}

    def test_completion_order(self):
        with collecting() as collector:
            with span("a"):
                with span("b"):
                    pass
        # Inner spans complete (and are recorded) before outer ones.
        assert [record.name for record in collector.spans] == ["b", "a"]

    def test_span_ids_unique_and_increasing(self):
        with collecting() as collector:
            for _ in range(5):
                with span("x"):
                    pass
        ids = [record.span_id for record in collector.spans]
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)

    def test_sibling_roots(self):
        with collecting() as collector:
            with span("first"):
                pass
            with span("second"):
                pass
        assert [root.name for root in collector.roots] == ["first", "second"]


class TestTiming:
    def test_elapsed_monotone_and_nested_bound(self):
        with collecting() as collector:
            with span("outer"):
                with span("inner"):
                    time.sleep(0.01)
        outer = collector.roots[0]
        inner = outer.children[0]
        assert inner.elapsed_seconds >= 0.01
        assert outer.elapsed_seconds >= inner.elapsed_seconds
        assert outer.ended is not None and outer.ended >= outer.started

    def test_self_seconds(self):
        with collecting() as collector:
            with span("outer"):
                with span("inner"):
                    time.sleep(0.01)
        outer = collector.roots[0]
        assert 0.0 <= outer.self_seconds <= outer.elapsed_seconds

    def test_disabled_span_still_times(self):
        assert get_collector() is None
        with span("free") as record:
            time.sleep(0.005)
        assert record.elapsed_seconds >= 0.005
        assert record.ended is not None

    def test_open_span_reports_running_elapsed(self):
        with span("running") as record:
            first = record.elapsed_seconds
            second = record.elapsed_seconds
            assert second >= first >= 0.0


class TestCountersAndGauges:
    def test_disabled_noops(self):
        assert get_collector() is None
        assert counter("nope", 3) is None
        assert gauge("nope", 1.0) is None

    def test_counter_totals_and_span_attribution(self):
        with collecting() as collector:
            with span("work"):
                counter("items", 2)
                counter("items", 3)
            counter("items", 5)  # outside any span: global only
        assert collector.counters["items"] == 10.0
        assert collector.roots[0].counters["items"] == 5.0

    def test_gauge_last_value_wins(self):
        with collecting() as collector:
            gauge("temperature", 1.0)
            gauge("temperature", 42.0)
        assert collector.gauges["temperature"] == 42.0

    def test_counter_aggregates_across_threads(self):
        threads = 8
        increments = 200
        with collecting() as collector:
            def work():
                with span("worker"):
                    for _ in range(increments):
                        collector.add_counter("ticks", 1)

            workers = [threading.Thread(target=work) for _ in range(threads)]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join()
        assert collector.counters["ticks"] == float(threads * increments)
        # Each thread has its own span stack, so every worker span is a
        # root of its own tree with its own attribution.
        worker_roots = [r for r in collector.roots if r.name == "worker"]
        assert len(worker_roots) == threads
        assert all(r.counters["ticks"] == increments for r in worker_roots)


class TestCollectorInstallation:
    def test_collecting_restores_previous(self):
        outer = Collector()
        set_collector(outer)
        try:
            with collecting() as inner:
                assert get_collector() is inner
            assert get_collector() is outer
        finally:
            set_collector(None)

    def test_exception_still_closes_span(self):
        with collecting() as collector:
            with pytest.raises(ValueError):
                with span("doomed"):
                    raise ValueError("boom")
        assert [record.name for record in collector.spans] == ["doomed"]
        assert collector.spans[0].ended is not None
