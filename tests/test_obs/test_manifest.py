"""Run manifests: determinism, collector absorption, file format."""

from __future__ import annotations

import json

from repro.obs import (
    RunManifest,
    collecting,
    counter,
    describe_version,
    gauge,
    span,
)


def _begin(seed: int = 0) -> RunManifest:
    return RunManifest.begin(
        command=("run", "table3", "--scale", "0.25"),
        experiment="table3",
        scale=0.25,
        seed=seed,
        config={"command": "run"},
    )


class TestDeterminism:
    def test_same_inputs_same_fingerprint(self):
        first, second = _begin(), _begin()
        assert first.fingerprint() == second.fingerprint()
        # Wall-clock facts must not leak into the identity.
        second.finished_at = "2099-01-01T00:00:00+00:00"
        assert first.fingerprint() == second.fingerprint()

    def test_seed_changes_fingerprint(self):
        assert _begin(seed=0).fingerprint() != _begin(seed=1).fingerprint()

    def test_scale_changes_fingerprint(self):
        base = _begin()
        scaled = _begin()
        scaled.scale = 0.5
        assert base.fingerprint() != scaled.fingerprint()

    def test_config_changes_fingerprint(self):
        base = _begin()
        tweaked = _begin()
        tweaked.config["rendering_mode"] = "imr"
        assert base.fingerprint() != tweaked.fingerprint()

    def test_fingerprint_ignores_runtime_aggregates(self):
        # The fingerprint is the *plan* identity: two runs with the same
        # knobs must match even when their collectors observed different
        # work (this is the invariant megsim lint enforces statically).
        first, second = _begin(), _begin()
        with collecting() as one:
            with span("phase.a"):
                counter("frames", 10)
        first.finish(one)
        with collecting() as two:
            with span("phase.b"):
                counter("frames", 99)
                gauge("cycles", 1.0)
        second.finish(two)
        assert first.phases != second.phases
        assert first.fingerprint() == second.fingerprint()

    def test_identity_excludes_timing(self):
        manifest = _begin()
        identity = manifest.identity()
        assert "started_at" not in identity
        assert "finished_at" not in identity
        assert "phases" not in identity
        assert identity["seed"] == 0
        assert identity["scale"] == 0.25


class TestFinish:
    def test_absorbs_collector_aggregates(self):
        manifest = _begin()
        with collecting() as collector:
            with span("phase.a"):
                counter("items", 4)
            with span("phase.a"):
                pass
            with span("phase.b"):
                gauge("level", 9.0)
        manifest.finish(collector)
        by_name = {entry["name"]: entry for entry in manifest.phases}
        assert by_name["phase.a"]["count"] == 2
        assert by_name["phase.b"]["count"] == 1
        assert by_name["phase.a"]["total_seconds"] >= 0.0
        assert manifest.counters == {"items": 4.0}
        assert manifest.gauges == {"level": 9.0}
        assert manifest.finished_at is not None

    def test_finish_without_collector(self):
        manifest = _begin().finish()
        assert manifest.phases == []
        assert manifest.finished_at is not None


class TestJobs:
    def test_recorded_in_to_dict(self):
        manifest = _begin().record_jobs("auto", 8)
        payload = manifest.to_dict()
        assert payload["jobs"] == {"requested": "auto", "resolved": 8}

    def test_unset_jobs_serialize_as_none(self):
        payload = _begin().to_dict()
        assert payload["jobs"] == {"requested": None, "resolved": None}

    def test_fingerprint_stable_across_worker_counts(self):
        # The determinism contract (docs/parallelism.md): results are
        # byte-identical for any jobs value, so the worker count is an
        # execution fact and must not perturb the run's identity.
        serial = _begin().record_jobs(None, 1)
        pooled = _begin().record_jobs("auto", 16)
        assert serial.fingerprint() == pooled.fingerprint()
        assert serial.identity() == pooled.identity()
        assert "jobs" not in serial.identity()

    def test_requested_stored_as_string(self):
        manifest = _begin().record_jobs(4, 4)
        assert manifest.jobs_requested == "4"
        assert manifest.jobs_resolved == 4


class TestFile:
    def test_write_produces_valid_json(self, tmp_path):
        target = tmp_path / "deep" / "manifest.json"
        manifest = _begin().finish()
        written = manifest.write(target)
        payload = json.loads(written.read_text())
        for key in (
            "command", "experiment", "scale", "seed", "version", "python",
            "platform", "fingerprint", "started_at", "finished_at",
            "phases", "counters", "gauges",
        ):
            assert key in payload, key
        assert payload["experiment"] == "table3"
        assert payload["fingerprint"] == manifest.fingerprint()


class TestVersion:
    def test_describe_version_nonempty(self):
        version = describe_version()
        assert isinstance(version, str)
        assert version
