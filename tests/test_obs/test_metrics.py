"""Streaming histograms: percentile math, merge invariance, round trips."""

from __future__ import annotations

import pickle
import random

import pytest

from repro.errors import ConfigError
from repro.obs.metrics import (
    SUBBUCKETS,
    Histogram,
    MetricsRegistry,
    Timer,
    bucket_index,
    bucket_upper_bound,
)


def _filled(name: str, samples) -> Histogram:
    hist = Histogram(name)
    for sample in samples:
        hist.record(sample)
    return hist


class TestBucketing:
    def test_upper_bound_covers_its_bucket(self):
        for value in (0.001, 0.5, 0.75, 1.0, 1.5, 3.0, 1e6, 2**52 + 0.5):
            index = bucket_index(value)
            assert value <= bucket_upper_bound(index)
            # Buckets are [lower, upper): the bucket below ends at or
            # before the value.
            assert bucket_upper_bound(index - 1) <= value

    def test_relative_resolution(self):
        # Log-linear bucketing: the upper edge overshoots by at most
        # one sub-bucket width, i.e. a factor of 1 + 1/SUBBUCKETS.
        for value in (0.037, 1.0, 7.3, 123456.789):
            edge = bucket_upper_bound(bucket_index(value))
            assert edge / value <= 1.0 + 1.0 / SUBBUCKETS + 1e-12

    def test_deterministic(self):
        assert bucket_index(1234.5) == bucket_index(1234.5)
        assert bucket_index(0.5) != bucket_index(0.25)


class TestRecordValidation:
    @pytest.mark.parametrize(
        "bad", [-1.0, -1e-9, float("nan"), float("inf"), float("-inf")]
    )
    def test_rejects_out_of_domain(self, bad):
        with pytest.raises(ConfigError):
            Histogram("h").record(bad)

    def test_accepts_zero(self):
        hist = _filled("h", [0.0, 0.0, 1.0])
        assert hist.zeros == 2
        assert hist.count == 3
        assert hist.minimum == 0.0


class TestPercentiles:
    def test_empty(self):
        hist = Histogram("h")
        assert hist.percentile(50.0) == 0.0
        assert hist.mean == 0.0
        aggregates = hist.aggregates()
        assert aggregates["count"] == 0
        assert aggregates["min"] is None and aggregates["max"] is None

    def test_single_sample_is_exact(self):
        hist = _filled("h", [7.3])
        for q in (0.0, 1.0, 50.0, 99.0, 100.0):
            assert hist.percentile(q) == 7.3

    def test_extremes_are_exact(self):
        hist = _filled("h", [3.0, 11.0, 5.0, 2.0, 19.0])
        assert hist.percentile(0.0) == 2.0
        assert hist.percentile(100.0) == 19.0

    def test_known_distribution(self):
        hist = _filled("h", [float(i) for i in range(1, 11)])
        # Nearest-rank within one sub-bucket of relative resolution.
        assert hist.percentile(50.0) == pytest.approx(5.0, rel=1 / SUBBUCKETS)
        assert hist.percentile(90.0) == pytest.approx(9.0, rel=1 / SUBBUCKETS)
        assert hist.percentile(99.0) == 10.0

    def test_all_zeros(self):
        hist = _filled("h", [0.0] * 5)
        assert hist.percentile(50.0) == 0.0
        assert hist.percentile(100.0) == 0.0

    def test_out_of_range_q(self):
        with pytest.raises(ConfigError):
            _filled("h", [1.0]).percentile(101.0)
        with pytest.raises(ConfigError):
            _filled("h", [1.0]).percentile(-0.5)


class TestMerge:
    def test_merge_equals_single_stream(self):
        samples = [float(i % 97) for i in range(500)]
        whole = _filled("h", samples)
        left = _filled("h", samples[:123])
        right = _filled("h", samples[123:])
        left.merge(right)
        assert left.to_dict() == whole.to_dict()

    def test_merge_order_invariance(self):
        rng = random.Random(7)
        samples = [float(rng.randint(0, 10**9)) for _ in range(1000)]
        parts = [samples[i::7] for i in range(7)]
        orders = [list(range(7)), list(reversed(range(7)))]
        rng.shuffle(order := list(range(7)))
        orders.append(order)
        states = []
        for permutation in orders:
            merged = Histogram("h")
            for part_index in permutation:
                merged.merge(_filled("h", parts[part_index]))
            states.append(merged.to_dict())
        assert states[0] == states[1] == states[2]

    def test_merge_empty(self):
        hist = _filled("h", [1.0, 2.0])
        before = hist.to_dict()
        hist.merge(Histogram("h"))
        assert hist.to_dict() == before


class TestSerialization:
    def test_round_trip(self):
        hist = _filled("h", [0.0, 0.5, 1.0, 2.0, 1e6])
        rebuilt = Histogram.from_dict("h", hist.to_dict())
        assert rebuilt.to_dict() == hist.to_dict()
        assert rebuilt.aggregates() == hist.aggregates()

    def test_json_friendly(self):
        import json

        state = _filled("h", [1.0, 2.0]).to_dict()
        assert json.loads(json.dumps(state)) == state

    def test_subbucket_mismatch_rejected(self):
        state = _filled("h", [1.0]).to_dict()
        state["subbuckets"] = SUBBUCKETS * 2
        with pytest.raises(ConfigError):
            Histogram.from_dict("h", state)


class TestTimer:
    def test_records_durations(self):
        timer = Timer("t")
        with timer.time():
            pass
        timer.record_seconds(0.25)
        assert timer.histogram.count == 2
        assert timer.histogram.maximum >= 0.25
        assert timer.name == "t"


class TestRegistry:
    def test_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.histogram("a") is registry.histogram("a")
        registry.observe("b", 1.0)
        assert "b" in registry and len(registry) == 2
        assert registry.names() == ["a", "b"]

    def test_state_merge_partition_invariance(self):
        rng = random.Random(3)
        samples = [float(rng.randint(0, 10**6)) for _ in range(400)]
        whole = MetricsRegistry()
        for sample in samples:
            whole.observe("m", sample)
        merged = MetricsRegistry()
        for start in range(0, 400, 100):
            worker = MetricsRegistry()
            for sample in samples[start:start + 100]:
                worker.observe("m", sample)
            merged.merge_state(worker.state())
        assert merged.state() == whole.state()

    def test_merge_live_registries(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.observe("a", 1.0)
        second.observe("a", 2.0)
        second.observe("b", 3.0)
        first.merge(second)
        assert first.histogram("a").count == 2
        assert first.histogram("b").count == 1
        # Merging copies state; the source registry must stay intact.
        assert second.histogram("a").count == 1

    def test_registry_timer_shares_histogram(self):
        registry = MetricsRegistry()
        registry.timer("t").record_seconds(1.0)
        assert registry.histogram("t").count == 1

    def test_state_pickles(self):
        registry = MetricsRegistry()
        registry.observe("m", 42.0)
        state = pickle.loads(pickle.dumps(registry.state()))
        rebuilt = MetricsRegistry()
        rebuilt.merge_state(state)
        assert rebuilt.state() == registry.state()
