"""JSONL sink: every line parses, schema round-trips, values coerce."""

from __future__ import annotations

import json

import numpy as np

from repro.obs import JsonlSink, collecting, counter, gauge, span


def read_events(path):
    with open(path, encoding="utf-8") as stream:
        return [json.loads(line) for line in stream]


class TestJsonlRoundTrip:
    def test_every_line_parses_and_pairs(self, tmp_path):
        trace_file = tmp_path / "trace.jsonl"
        with collecting(sink=JsonlSink(trace_file)) as collector:
            with span("outer", alias="hcr"):
                counter("frames", 40)
                with span("inner"):
                    gauge("cycles", 1.5e9)
        collector.close()

        events = read_events(trace_file)
        types = [event["type"] for event in events]
        assert types == [
            "span_start", "counter", "span_start", "gauge",
            "span_end", "span_end",
        ]
        starts = {e["span_id"] for e in events if e["type"] == "span_start"}
        ends = {e["span_id"] for e in events if e["type"] == "span_end"}
        assert starts == ends

    def test_span_end_carries_aggregates(self, tmp_path):
        trace_file = tmp_path / "trace.jsonl"
        with collecting(sink=JsonlSink(trace_file)) as collector:
            with span("work"):
                counter("items", 7)
                gauge("level", 3.0)
        collector.close()

        end = [e for e in read_events(trace_file) if e["type"] == "span_end"][0]
        assert end["name"] == "work"
        assert end["counters"] == {"items": 7.0}
        assert end["gauges"] == {"level": 3.0}
        assert end["elapsed_seconds"] >= 0.0

    def test_counter_events_carry_running_total(self, tmp_path):
        trace_file = tmp_path / "trace.jsonl"
        with collecting(sink=JsonlSink(trace_file)) as collector:
            counter("n", 1)
            counter("n", 2)
        collector.close()
        totals = [
            e["total"] for e in read_events(trace_file) if e["type"] == "counter"
        ]
        assert totals == [1.0, 3.0]

    def test_numpy_values_serialize(self, tmp_path):
        trace_file = tmp_path / "trace.jsonl"
        with collecting(sink=JsonlSink(trace_file)) as collector:
            with span("np", width=np.int64(3)):
                gauge("value", np.float64(2.5))
        collector.close()
        events = read_events(trace_file)  # raises if any line is invalid
        assert any(e["type"] == "gauge" and e["value"] == 2.5 for e in events)

    def test_close_is_idempotent_and_silences_emit(self, tmp_path):
        sink = JsonlSink(tmp_path / "trace.jsonl")
        sink.emit({"type": "counter", "name": "x"})
        sink.close()
        sink.close()
        sink.emit({"type": "counter", "name": "late"})  # dropped, no error
        events = read_events(tmp_path / "trace.jsonl")
        assert [e["name"] for e in events] == ["x"]

    def test_creates_parent_directories(self, tmp_path):
        nested = tmp_path / "a" / "b" / "trace.jsonl"
        sink = JsonlSink(nested)
        sink.emit({"type": "gauge", "name": "x", "value": 1.0})
        sink.close()
        assert nested.exists()
