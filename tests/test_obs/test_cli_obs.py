"""CLI observability: --profile, --trace, MEGSIM_TRACE, `all` progress."""

from __future__ import annotations

import json

import pytest

import repro.cli as cli
from repro.analysis.experiments import ExperimentResult
from repro.obs import get_collector


def read_events(path):
    with open(path, encoding="utf-8") as stream:
        return [json.loads(line) for line in stream]


class TestProfileFlag:
    def test_profile_prints_report(self, capsys):
        assert cli.main(["run", "table1", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "== observability report ==" in out
        assert "cli.run" in out
        assert "experiment" in out
        # The experiment output itself still appears.
        assert "600 MHz" in out

    def test_collector_uninstalled_after_run(self, capsys):
        cli.main(["run", "table1", "--profile"])
        assert get_collector() is None

    def test_no_flags_no_report(self, capsys):
        assert cli.main(["run", "table1"]) == 0
        assert "observability report" not in capsys.readouterr().out


class TestTraceFlag:
    def test_trace_writes_valid_jsonl_and_manifest(self, capsys, tmp_path):
        trace_file = tmp_path / "run.jsonl"
        assert cli.main([
            "run", "table1", "--trace", str(trace_file),
        ]) == 0
        events = read_events(trace_file)  # every line must parse
        types = {event["type"] for event in events}
        assert {"span_start", "span_end", "manifest"} <= types
        assert any(
            e["type"] == "span_start" and e["name"] == "cli.run"
            for e in events
        )
        manifest_file = tmp_path / "run.manifest.json"
        assert manifest_file.exists()
        manifest = json.loads(manifest_file.read_text())
        assert manifest["experiment"] == "table1"
        assert manifest["phases"]

    def test_explicit_manifest_path(self, capsys, tmp_path):
        manifest_file = tmp_path / "m.json"
        assert cli.main([
            "run", "table1", "--manifest", str(manifest_file),
        ]) == 0
        manifest = json.loads(manifest_file.read_text())
        assert manifest["command"][:2] == ["run", "table1"]

    def test_megsim_trace_env_var(self, capsys, tmp_path, monkeypatch):
        trace_file = tmp_path / "env.jsonl"
        monkeypatch.setenv("MEGSIM_TRACE", str(trace_file))
        assert cli.main(["run", "table1"]) == 0
        assert trace_file.exists()
        assert read_events(trace_file)

    def test_plan_command_traces_pipeline_spans(self, capsys, tmp_path):
        trace_file = tmp_path / "plan.jsonl"
        assert cli.main([
            "plan", "hcr", "--scale", "0.02", "--trace", str(trace_file),
        ]) == 0
        names = {
            e["name"] for e in read_events(trace_file)
            if e["type"] == "span_start"
        }
        assert {"cli.plan", "functional.profile", "megsim.plan",
                "cluster.search"} <= names


class TestAllProgressLines:
    def test_per_experiment_lines(self, capsys, monkeypatch):
        fake = {
            "expA": lambda **kw: ExperimentResult("expA", {}, "report A"),
            "expB": lambda **kw: ExperimentResult("expB", {}, "report B"),
        }
        monkeypatch.setattr(cli, "EXPERIMENTS", fake)
        monkeypatch.setattr(
            cli, "run_experiment", lambda name, **kw: fake[name](**kw)
        )
        assert cli.main(["all", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "[1/2] expA ..." in out
        assert "[2/2] expB ..." in out
        assert "[1/2] expA done in" in out
        assert "[2/2] expB done in" in out
        assert "report A" in out and "report B" in out
