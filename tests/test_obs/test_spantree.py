"""Span-tree round trips: dicts, event streams, trace artifacts.

The contract under test (docs/observability.md, "Trace IDs and the
report"): unlike `ObsBuffer` adoption, these round trips are faithful —
ids, parent links, attrs and per-span counter/gauge attribution survive
a trip through JSON exactly, whether the tree travels as a nested
document, as a JSONL event stream, or as a persisted `megsim-trace`
artifact.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import TraceError
from repro.obs import (
    Collector,
    JsonlSink,
    collecting,
    counter,
    gauge,
    get_collector,
    new_trace_id,
    read_trace_artifact,
    span,
    span_from_dict,
    span_to_dict,
    spans_from_events,
    write_trace_artifact,
)
from repro.parallel import ParallelConfig, parallel_map


def read_events(path):
    with open(path, encoding="utf-8") as stream:
        return [json.loads(line) for line in stream]


def _build_tree():
    """One collector run with nesting, attrs, counters and gauges."""
    with collecting() as collector:
        with span("outer", alias="hcr", scale=0.1):
            counter("frames", 40)
            with span("inner", stage="plan"):
                gauge("cycles", 1.5e9)
                counter("frames", 2)
            with span("inner", stage="estimate"):
                pass
    return collector.roots[0]


class TestSpanDictRoundTrip:
    def test_round_trip_is_identical(self):
        root = _build_tree()
        rebuilt = span_from_dict(span_to_dict(root))
        assert span_to_dict(rebuilt) == span_to_dict(root)

    def test_ids_parents_and_attrs_survive(self):
        root = _build_tree()
        rebuilt = span_from_dict(span_to_dict(root))
        assert rebuilt.span_id == root.span_id
        assert rebuilt.parent_id is None
        assert rebuilt.attrs == {"alias": "hcr", "scale": 0.1}
        assert [c.span_id for c in rebuilt.children] == [
            c.span_id for c in root.children
        ]
        assert all(
            c.parent_id == root.span_id for c in rebuilt.children
        )
        assert rebuilt.children[0].gauges == {"cycles": 1.5e9}
        assert rebuilt.children[0].counters == {"frames": 2.0}

    def test_rebuilt_spans_are_rebased(self):
        root = _build_tree()
        rebuilt = span_from_dict(span_to_dict(root))
        assert rebuilt.started == 0.0
        assert rebuilt.elapsed_seconds == root.elapsed_seconds

    def test_open_span_is_rejected(self):
        collector = Collector()
        record = collector.start_span("open")
        with pytest.raises(TraceError, match="still open"):
            span_to_dict(record)

    def test_malformed_document_is_rejected(self):
        with pytest.raises(TraceError, match="malformed"):
            span_from_dict({"attrs": {}})  # no name


class TestSpansFromEvents:
    def test_rebuilds_collector_roots_exactly(self, tmp_path):
        trace_file = tmp_path / "trace.jsonl"
        with collecting(sink=JsonlSink(trace_file)) as collector:
            with span("outer", alias="hcr"):
                counter("frames", 40)
                with span("inner"):
                    gauge("cycles", 2.0)
            with span("second_root"):
                pass
        collector.close()

        rebuilt = spans_from_events(read_events(trace_file))
        assert [span_to_dict(r) for r in rebuilt] == [
            span_to_dict(r) for r in collector.roots
        ]

    def test_counter_events_attribute_to_open_spans(self):
        events = [
            {"type": "span_start", "span_id": 1, "parent_id": None,
             "name": "root", "attrs": {}},
            {"type": "counter", "span_id": 1, "name": "hits", "delta": 2.0},
            {"type": "counter", "span_id": 1, "name": "hits", "delta": 3.0},
            {"type": "gauge", "span_id": 1, "name": "level", "value": 7.0},
            {"type": "span_end", "span_id": 1, "name": "root",
             "elapsed_seconds": 0.5},
        ]
        (root,) = spans_from_events(events)
        # span_end carried no aggregates; the streamed events supplied them.
        assert root.counters == {"hits": 5.0}
        assert root.gauges == {"level": 7.0}

    def test_unclosed_spans_are_dropped(self):
        events = [
            {"type": "span_start", "span_id": 1, "parent_id": None,
             "name": "crashed", "attrs": {}},
            {"type": "span_start", "span_id": 2, "parent_id": 1,
             "name": "child", "attrs": {}},
        ]
        assert spans_from_events(events) == []

    def test_unknown_event_types_are_ignored(self):
        events = [
            {"type": "manifest", "manifest": {}},
            {"type": "span_start", "span_id": 1, "parent_id": None,
             "name": "root", "attrs": {}},
            {"type": "histogram", "name": "h", "state": {}},
            {"type": "span_end", "span_id": 1, "name": "root",
             "elapsed_seconds": 0.1},
        ]
        (root,) = spans_from_events(events)
        assert root.name == "root"


class TestTraceArtifact:
    def test_write_read_round_trip(self, tmp_path):
        root = _build_tree()
        trace_id = new_trace_id()
        target = write_trace_artifact(
            tmp_path / "traces" / "request-1.jsonl", [root], trace_id,
            meta={"request_id": 1, "benchmark": "hcr"},
        )
        loaded = read_trace_artifact(target)
        assert loaded["trace_id"] == trace_id
        assert loaded["meta"] == {"request_id": 1, "benchmark": "hcr"}
        assert [span_to_dict(r) for r in loaded["roots"]] == [span_to_dict(root)]

    def test_generator_roots_are_materialized(self, tmp_path):
        root = _build_tree()
        target = write_trace_artifact(
            tmp_path / "t.jsonl", (r for r in [root]), "abc123",
        )
        header = json.loads(target.read_text(encoding="utf-8").splitlines()[0])
        assert header["roots"] == 1

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(TraceError, match="cannot read"):
            read_trace_artifact(tmp_path / "nope.jsonl")

    def test_wrong_schema_raises(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"schema": "megsim-bench", "version": 1}\n')
        with pytest.raises(TraceError, match="schema"):
            read_trace_artifact(bad)

    def test_wrong_version_raises(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"schema": "megsim-trace", "version": 99}\n')
        with pytest.raises(TraceError, match="version"):
            read_trace_artifact(bad)

    def test_empty_file_raises(self, tmp_path):
        bad = tmp_path / "empty.jsonl"
        bad.write_text("")
        with pytest.raises(TraceError, match="empty"):
            read_trace_artifact(bad)


def _spanning_worker(item: int) -> str:
    """Pool task: record a span, report the worker collector's trace id."""
    with span("worker.unit", item=item):
        counter("worker.items", 1)
    return get_collector().trace_id


class TestTraceIdPropagation:
    def test_collector_stamps_trace_id_on_every_event(self, tmp_path):
        trace_file = tmp_path / "trace.jsonl"
        with collecting(sink=JsonlSink(trace_file), trace_id="feed") as col:
            with span("outer"):
                counter("hits", 1)
        col.close()
        events = read_events(trace_file)
        assert events, "sink saw no events"
        assert all(event["trace_id"] == "feed" for event in events)

    def test_fresh_collectors_get_distinct_ids(self):
        assert Collector().trace_id != Collector().trace_id
        assert len(new_trace_id()) == 16

    def test_workers_inherit_the_parent_trace_id(self):
        with collecting() as collector:
            with span("parent"):
                worker_ids = parallel_map(
                    _spanning_worker, [0, 1, 2],
                    parallel=ParallelConfig(jobs=2),
                )
        assert worker_ids == [collector.trace_id] * 3

    def test_adopted_spans_carry_deterministic_worker_labels(self):
        with collecting() as collector:
            with span("parent"):
                parallel_map(
                    _spanning_worker, [0, 1, 2],
                    parallel=ParallelConfig(jobs=2),
                )
        adopted = [r for r in collector.spans if r.name == "worker.unit"]
        assert sorted(r.attrs["worker"] for r in adopted) == [
            "task:0", "task:1", "task:2",
        ]

    def test_serial_fallback_does_not_inject_worker_labels(self):
        with collecting() as collector:
            with span("parent"):
                parallel_map(_spanning_worker, [0], parallel=ParallelConfig())
        (unit,) = [r for r in collector.spans if r.name == "worker.unit"]
        assert "worker" not in unit.attrs
