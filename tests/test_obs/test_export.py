"""Metric exporters: golden files, name sanitization, dispatch."""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs import Collector, Histogram, write_metrics
from repro.obs.export import (
    METRICS_SCHEMA_VERSION,
    metric_name,
    render_metrics_jsonl,
    render_prometheus,
)

GOLDEN_DIR = Path(__file__).parent / "golden"


def _collector() -> Collector:
    """A fixed collector; the golden files pin its rendering verbatim."""
    collector = Collector()
    collector.add_counter("cycle.frames_simulated", 48)
    collector.add_counter("cluster.seeds", 2.5)
    collector.set_gauge("cycle.cycles", 1250000.0)
    collector.set_gauge("sampler.threshold", 0.25)
    for value in (2.0, 3.0, 4.0):
        collector.observe("cluster.kmeans_iterations", value)
    for value in (0.0, 0.5, 1.5, 2.5):
        collector.observe("bench/x", value)
    return collector


class TestMetricName:
    def test_sanitizes_punctuation(self):
        assert metric_name("bench/x") == "megsim_bench_x"
        assert metric_name("cycle.frames-simulated") == (
            "megsim_cycle_frames_simulated"
        )

    def test_prefix_optional(self):
        assert metric_name("a.b", prefix="") == "a_b"


class TestGolden:
    def test_prometheus_matches_golden(self):
        golden = (GOLDEN_DIR / "metrics.prom").read_text()
        assert render_prometheus(_collector()) == golden

    def test_jsonl_matches_golden(self):
        golden = (GOLDEN_DIR / "metrics.jsonl").read_text()
        assert render_metrics_jsonl(_collector()) == golden

    def test_byte_stable_across_collectors(self):
        assert render_prometheus(_collector()) == render_prometheus(
            _collector()
        )
        assert render_metrics_jsonl(_collector()) == render_metrics_jsonl(
            _collector()
        )


class TestJsonlShape:
    def test_header_then_metrics(self):
        lines = render_metrics_jsonl(_collector()).splitlines()
        header = json.loads(lines[0])
        assert header == {
            "schema": "megsim-metrics", "version": METRICS_SCHEMA_VERSION,
        }
        kinds = [json.loads(line)["type"] for line in lines[1:]]
        assert kinds == sorted(kinds, key=("counter", "gauge",
                                           "histogram").index)

    def test_histogram_state_is_remergeable(self):
        collector = _collector()
        for line in render_metrics_jsonl(collector).splitlines()[1:]:
            row = json.loads(line)
            if row["type"] != "histogram":
                continue
            rebuilt = Histogram.from_dict(row["name"], row["state"])
            original = collector.metrics.histogram(row["name"])
            assert rebuilt.to_dict() == original.to_dict()
            assert row["aggregates"] == original.aggregates()


class TestPrometheusShape:
    def test_cumulative_buckets(self):
        text = render_prometheus(_collector())
        hist_lines = [line for line in text.splitlines()
                      if line.startswith("megsim_bench_x_bucket")]
        counts = [int(line.rsplit(" ", 1)[1]) for line in hist_lines]
        assert counts == sorted(counts)
        assert hist_lines[0].endswith('le="0"} 1')  # the zero sample
        assert hist_lines[-1].startswith('megsim_bench_x_bucket{le="+Inf"}')
        assert counts[-1] == 4

    def test_empty_collector(self):
        assert render_prometheus(Collector()) == ""
        lines = render_metrics_jsonl(Collector()).splitlines()
        assert len(lines) == 1  # header only


class TestWriteMetrics:
    def test_extension_dispatch(self, tmp_path):
        collector = _collector()
        jsonl = write_metrics(collector, tmp_path / "out.jsonl")
        assert jsonl.startswith('{"schema"')
        assert (tmp_path / "out.jsonl").read_text() == jsonl
        prom = write_metrics(collector, tmp_path / "out.prom")
        assert prom.startswith("# TYPE ")
        assert (tmp_path / "out.prom").read_text() == prom

    def test_creates_parent_directories(self, tmp_path):
        target = tmp_path / "deep" / "nested" / "m.prom"
        write_metrics(_collector(), target)
        assert target.is_file()
