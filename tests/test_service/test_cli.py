"""The service CLI surface: serve / submit / status / runs / report / --db."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.service import SCHEMA_VERSION, ResultsDB
from repro.store import STORE_ENV_VAR, set_store


@pytest.fixture
def cli_env(tmp_path, monkeypatch):
    """Private store and database for one CLI invocation chain."""
    monkeypatch.setenv(STORE_ENV_VAR, str(tmp_path / "store"))
    monkeypatch.setenv("MEGSIM_DB", str(tmp_path / "svc.sqlite3"))
    set_store(None)  # rebuild lazily from the patched environment
    yield tmp_path
    set_store(None)


def test_submit_serve_status_runs_round_trip(cli_env, capsys):
    assert main(["submit", "bbr1", "--scale", "0.02"]) == 0
    out = capsys.readouterr().out
    assert "submitted #1: bbr1" in out

    assert main(["serve", "--once"]) == 0
    out = capsys.readouterr().out
    assert "completed=1" in out
    assert "done=6" in out

    assert main(["status"]) == 0
    out = capsys.readouterr().out
    assert f"schema v{SCHEMA_VERSION}" in out
    assert "results:  1" in out

    assert main(["runs", "--benchmark", "bbr1"]) == 0
    out = capsys.readouterr().out
    assert "bbr1" in out
    assert "completed" in out


def test_report_round_trip(cli_env, capsys):
    """submit → serve → report: the page renders the drained archive,
    byte-identically across renders, and --json exposes the document."""
    assert main(["submit", "bbr1", "--scale", "0.02"]) == 0
    assert main(["serve", "--once"]) == 0
    capsys.readouterr()

    first = cli_env / "report1.html"
    second = cli_env / "report2.html"
    assert main(["report", "--out", str(first)]) == 0
    assert "wrote report to" in capsys.readouterr().out
    assert main(["report", "--out", str(second)]) == 0
    capsys.readouterr()
    assert first.read_bytes() == second.read_bytes()
    page = first.read_text(encoding="utf-8")
    assert "bbr1" in page
    assert "Request trace" in page

    assert main(["report", "--json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["schema"] == "megsim-report"
    assert document["service"]["counts"]["requests"]["completed"] == 1
    assert document["service"]["trace"]["request_id"] == 1


def test_report_without_database_renders_placeholders(cli_env, capsys):
    target = cli_env / "empty.html"
    assert main(["report", "--out", str(target)]) == 0
    capsys.readouterr()
    page = target.read_text(encoding="utf-8")
    assert "no results database" in page


def test_serve_report_hook_writes_the_page(cli_env, capsys):
    assert main(["submit", "bbr1", "--scale", "0.02"]) == 0
    target = cli_env / "dash.html"
    assert main(["serve", "--once", "--report", str(target)]) == 0
    out = capsys.readouterr().out
    assert f"report: {target}" in out
    assert target.is_file()
    assert "Experiment service" in target.read_text(encoding="utf-8")


def test_status_json_document(cli_env, capsys):
    assert main(["status", "--json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["schema_version"] == SCHEMA_VERSION
    assert document["requests"]["pending"] == 0
    assert document["db_path"].endswith("svc.sqlite3")


def test_runs_json_document(cli_env, capsys):
    main(["submit", "bbr1", "--scale", "0.02"])
    main(["serve", "--once"])
    capsys.readouterr()

    assert main(["runs", "--json", "--limit", "5"]) == 0
    rows = json.loads(capsys.readouterr().out)
    assert len(rows) == 1
    assert rows[0]["benchmark"] == "bbr1"
    assert rows[0]["status"] == "completed"
    assert rows[0]["metrics"]["relative_errors"]["cycles"] >= 0.0


def test_submit_suite_queues_every_benchmark(cli_env, capsys):
    from repro.workloads.benchmarks import benchmark_aliases

    assert main(["submit", "--suite", "smoke", "--scale", "0.02"]) == 0
    out = capsys.readouterr().out
    assert f"{len(benchmark_aliases())} request(s) queued" in out
    with ResultsDB() as db:  # resolves via the patched MEGSIM_DB
        counts = db.counts()
    assert counts["requests"]["pending"] == len(benchmark_aliases())


def test_submit_suite_default_scale(cli_env, capsys):
    from repro.benchmark_support import SUITE_SCALES

    assert main(["submit", "bbr1", "--suite", "smoke"]) == 0
    out = capsys.readouterr().out
    assert f"scale={SUITE_SCALES['smoke']}" in out


def test_db_flag_overrides_environment(cli_env, capsys, tmp_path):
    other = tmp_path / "other.sqlite3"
    assert main(["status", "--db", str(other)]) == 0
    out = capsys.readouterr().out
    assert str(other) in out
    assert other.exists()


def test_runs_empty_database(cli_env, capsys):
    assert main(["runs"]) == 0
    assert "no runs recorded" in capsys.readouterr().out


def test_service_manifest_records_db_identity(cli_env, capsys, tmp_path):
    manifest_path = tmp_path / "manifest.json"
    assert main(["status", "--manifest", str(manifest_path)]) == 0
    capsys.readouterr()
    document = json.loads(manifest_path.read_text())
    assert document["service"]["db"].endswith("svc.sqlite3")
    assert document["service"]["schema_version"] == SCHEMA_VERSION


def test_manifest_fingerprint_ignores_service_facts():
    """Like ``jobs``: where results are archived is an execution fact,
    not part of the run's identity."""
    from repro.obs import RunManifest

    plain = RunManifest.begin(command=("status",))
    recorded = RunManifest.begin(command=("status",))
    recorded.record_service("/elsewhere/other.sqlite3", SCHEMA_VERSION)
    assert plain.fingerprint() == recorded.fingerprint()
    assert recorded.to_dict()["service"]["db"] == "/elsewhere/other.sqlite3"
