"""Request expansion and its three-way dedup."""

from __future__ import annotations

import pytest

from repro.obs import collecting
from repro.pipeline import STAGES, materialize_stage, stage_fingerprints
from repro.pipeline.request import PipelineRequest
from repro.service.db import ResultsDB
from repro.service.scheduler import expand_request
from repro.store import ArtifactStore


@pytest.fixture
def db(tmp_path):
    with ResultsDB(tmp_path / "svc.sqlite3") as handle:
        yield handle


def _insert(db: ResultsDB, request: PipelineRequest) -> int:
    return db.insert_request(
        "fp-eval", request.alias, request.scale, request.options.seed, "{}"
    )


def test_expansion_creates_one_job_per_stage(db):
    request = PipelineRequest.create("bbr1", scale=0.05)
    request_id = _insert(db, request)
    with collecting() as collector:
        jobs = expand_request(db, request_id, request)

    assert set(jobs) == {stage.name for stage in STAGES}
    assert collector.counters["service.jobs.created"] == len(STAGES)
    fps = stage_fingerprints(request)
    for stage in STAGES:
        row = db.job(jobs[stage.name])
        assert row["status"] == "pending"
        assert row["source"] == "computed"
        assert row["fingerprint"] == fps[stage.name]
    linked = {row["stage"] for row in db.jobs_for_request(request_id)}
    assert linked == set(jobs)


def test_identical_request_dedupes_onto_inflight_jobs(db):
    request = PipelineRequest.create("bbr1", scale=0.05)
    first = _insert(db, request)
    expand_request(db, first, request)

    second = _insert(db, request)
    with collecting() as collector:
        jobs = expand_request(db, second, request)

    assert collector.counters["service.jobs.deduped.inflight"] == len(STAGES)
    assert "service.jobs.created" not in collector.counters
    # Both requests share the same physical job rows.
    first_jobs = {row["id"] for row in db.jobs_for_request(first)}
    assert {db.job(job_id)["id"] for job_id in jobs.values()} == first_jobs


def test_done_jobs_dedupe_as_done(db):
    request = PipelineRequest.create("bbr1", scale=0.05)
    first = _insert(db, request)
    jobs = expand_request(db, first, request)
    for job_id in jobs.values():
        db.claim_job(job_id)
        db.finish_job(job_id)

    second = _insert(db, request)
    with collecting() as collector:
        expand_request(db, second, request)
    assert collector.counters["service.jobs.deduped.done"] == len(STAGES)
    assert "service.jobs.created" not in collector.counters


def test_materialized_artifacts_dedupe_against_the_store(db, tmp_path):
    """Artifacts computed *outside* the service (e.g. by ``megsim run``)
    are adopted as jobs born done, with ``source='store'``."""
    store = ArtifactStore(root=tmp_path / "store")
    request = PipelineRequest.create("bbr1", scale=0.05)
    materialize_stage(request, "profile", store=store)  # trace + profile

    request_id = _insert(db, request)
    with collecting() as collector:
        jobs = expand_request(db, request_id, request, store=store)

    assert collector.counters["service.jobs.deduped.store"] == 2
    assert collector.counters["service.jobs.created"] == len(STAGES) - 2
    for name in ("trace", "profile"):
        row = db.job(jobs[name])
        assert row["status"] == "done"
        assert row["source"] == "store"
    assert db.job(jobs["plan"])["status"] == "pending"


def test_expansion_requeues_failed_jobs(db):
    request = PipelineRequest.create("bbr1", scale=0.05)
    first = _insert(db, request)
    jobs = expand_request(db, first, request)
    db.claim_job(jobs["trace"])
    db.finish_job(jobs["trace"], error="TraceError: boom")

    second = _insert(db, request)
    with collecting() as collector:
        expand_request(db, second, request)
    assert collector.counters["service.jobs.retried"] == 1
    assert db.job(jobs["trace"])["status"] == "pending"
    assert db.job(jobs["trace"])["error"] is None


def test_downstream_jobs_wait_for_upstream_jobs(db):
    request = PipelineRequest.create("bbr1", scale=0.05)
    request_id = _insert(db, request)
    jobs = expand_request(db, request_id, request)

    ready = {row["id"] for row in db.ready_jobs()}
    assert ready == {jobs["trace"]}  # the only stage with no deps
