"""ResultsDB: schema creation, migrations, transitions, concurrency."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ServiceError
from repro.service.db import (
    MIGRATIONS,
    SCHEMA_VERSION,
    ResultsDB,
    resolve_db_path,
)


def test_fresh_database_is_created_at_current_version(tmp_path):
    with ResultsDB(tmp_path / "svc.sqlite3") as db:
        assert db.schema_version() == SCHEMA_VERSION


def test_fresh_database_has_all_tables(tmp_path):
    with ResultsDB(tmp_path / "svc.sqlite3") as db:
        tables = {
            row["name"]
            for row in db._conn.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table'"
            )
        }
    assert {"schema_meta", "requests", "jobs", "request_jobs",
            "results"} <= tables


def test_migrations_cover_every_version():
    assert sorted(MIGRATIONS) == list(range(1, SCHEMA_VERSION + 1))


def test_v1_to_v2_migration_preserves_rows(tmp_path):
    """The round-trip the migration policy promises: a v1 file upgrades
    in place with its rows intact and gains the v2 columns."""
    path = tmp_path / "svc.sqlite3"
    with ResultsDB(path, target_version=1) as db:
        assert db.schema_version() == 1
        request_id = db.insert_request("fp-req", "bbr1", 0.05, 1234, "{}")
        job_id, created = db.upsert_job("fp-job", "trace", deps=[])
        assert created
        db.link_request_job(request_id, job_id, "trace")
        # v1 has no attempts column yet.
        columns = {
            row["name"]
            for row in db._conn.execute("PRAGMA table_info(jobs)")
        }
        assert "attempts" not in columns

    with ResultsDB(path) as db:
        assert db.schema_version() == SCHEMA_VERSION
        row = db.request(request_id)
        assert row["benchmark"] == "bbr1"
        assert row["fingerprint"] == "fp-req"
        job = db.job(job_id)
        assert job["stage"] == "trace"
        assert job["attempts"] == 0  # the v2 column, with its default
        assert db.claim_job(job_id)
        assert db.job(job_id)["attempts"] == 1


def test_v2_to_v3_migration_preserves_rows(tmp_path):
    """A v2 file (pre-trace build) upgrades in place: rows intact, the
    trace columns appear NULL, and new writes may fill them."""
    path = tmp_path / "svc.sqlite3"
    with ResultsDB(path, target_version=2) as db:
        assert db.schema_version() == 2
        request_id = db.insert_request("fp-req", "bbr1", 0.05, 1234, "{}")
        db.claim_request(request_id)
        db.record_result(request_id, {"relative_errors": {}})
        db.finish_request(request_id, "completed")
        columns = {
            row["name"]
            for row in db._conn.execute("PRAGMA table_info(requests)")
        }
        assert "trace_id" not in columns

    with ResultsDB(path) as db:
        assert db.schema_version() == SCHEMA_VERSION
        row = db.request(request_id)
        assert row["benchmark"] == "bbr1"
        assert row["trace_id"] is None  # the v3 column, unfilled
        (run,) = db.runs()
        assert run["trace_path"] is None
        # New writes can use the migrated columns.
        second = db.insert_request("fp2", "hwh", 0.1, 1, "{}",
                                   trace_id="abcd" * 4)
        db.claim_request(second)
        db.record_result(second, {}, trace_path="/tmp/t.jsonl")
        db.finish_request(second, "completed")
        assert db.request(second)["trace_id"] == "abcd" * 4
        assert db.runs(benchmark="hwh")[0]["trace_path"] == "/tmp/t.jsonl"


def test_pre_v3_files_stay_writable_without_trace_values(tmp_path):
    """Writers that omit trace values never name the v3 columns, so a
    file pinned at an older schema accepts them unchanged."""
    with ResultsDB(tmp_path / "svc.sqlite3", target_version=1) as db:
        request_id = db.insert_request("fp", "asp", 0.1, 1, "{}")
        assert db.request(request_id)["benchmark"] == "asp"
    with ResultsDB(tmp_path / "v2.sqlite3", target_version=2) as db:
        request_id = db.insert_request("fp", "asp", 0.1, 1, "{}")
        db.claim_request(request_id)
        db.record_result(request_id, {"ok": True})
        assert db.result(request_id) == {"ok": True}


def test_job_request_row_picks_the_first_linked_request(tmp_path):
    """A shared job borrows its identity from the first request that
    linked it — lowest request id wins, deterministically."""
    with ResultsDB(tmp_path / "svc.sqlite3") as db:
        first = db.insert_request("fp-a", "bbr1", 0.1, 1, "{}",
                                  trace_id="aaaa")
        second = db.insert_request("fp-b", "bbr1", 0.1, 1, "{}",
                                   trace_id="bbbb")
        job_id, _ = db.upsert_job("fp-job", "trace", deps=[])
        db.link_request_job(second, job_id, "trace")
        db.link_request_job(first, job_id, "trace")
        row = db.job_request_row(job_id)
        assert row["id"] == first
        assert row["trace_id"] == "aaaa"
        assert db.job_request_row(job_id + 999) is None


def test_dedup_stats_summarizes_sources_and_sharing(tmp_path):
    with ResultsDB(tmp_path / "svc.sqlite3") as db:
        first = db.insert_request("fp-a", "bbr1", 0.1, 1, "{}")
        second = db.insert_request("fp-b", "bbr1", 0.1, 1, "{}")
        shared, _ = db.upsert_job("fp-shared", "trace", deps=[],
                                  status="done")
        private, _ = db.upsert_job("fp-private", "profile", deps=[])
        adopted, _ = db.upsert_job("fp-store", "plan", deps=[],
                                   status="done", source="store")
        db.link_request_job(first, shared, "trace")
        db.link_request_job(second, shared, "trace")
        db.link_request_job(first, private, "profile")
        stats = db.dedup_stats()
    assert stats["sources"]["computed"]["done"] == 1
    assert stats["sources"]["computed"]["pending"] == 1
    assert stats["sources"]["store"]["done"] == 1
    assert stats["jobs"] == 3
    assert stats["links"] == 3
    assert stats["shared_jobs"] == 1


def test_migration_is_idempotent_across_reopens(tmp_path):
    path = tmp_path / "svc.sqlite3"
    with ResultsDB(path) as db:
        assert db.migrate() == 0  # nothing left to apply
    with ResultsDB(path) as db:
        assert db.schema_version() == SCHEMA_VERSION


def test_newer_schema_is_rejected(tmp_path):
    path = tmp_path / "svc.sqlite3"
    with ResultsDB(path) as db:
        db._conn.execute("UPDATE schema_meta SET version = ?",
                         (SCHEMA_VERSION + 1,))
        db._conn.commit()
    with pytest.raises(ServiceError, match="newer"):
        ResultsDB(path)


def test_invalid_target_version_is_rejected(tmp_path):
    with pytest.raises(ServiceError, match="cannot target"):
        ResultsDB(tmp_path / "svc.sqlite3", target_version=0)


def test_request_lifecycle(tmp_path):
    with ResultsDB(tmp_path / "svc.sqlite3") as db:
        request_id = db.insert_request("fp", "hwh", 0.1, 1234, "{}")
        assert db.request(request_id)["status"] == "pending"
        assert db.claim_request(request_id)
        assert not db.claim_request(request_id)  # already running
        db.finish_request(request_id, "completed")
        row = db.request(request_id)
        assert row["status"] == "completed"
        assert row["finished_at"] is not None


def test_finish_request_rejects_non_terminal_status(tmp_path):
    with ResultsDB(tmp_path / "svc.sqlite3") as db:
        request_id = db.insert_request("fp", "hwh", 0.1, 1234, "{}")
        with pytest.raises(ServiceError, match="terminal"):
            db.finish_request(request_id, "running")


def test_job_upsert_dedupes_on_fingerprint(tmp_path):
    with ResultsDB(tmp_path / "svc.sqlite3") as db:
        first_id, created = db.upsert_job("fp", "trace", deps=[])
        assert created
        second_id, created = db.upsert_job("fp", "trace", deps=[])
        assert not created
        assert first_id == second_id


def test_ready_jobs_respect_dependencies(tmp_path):
    with ResultsDB(tmp_path / "svc.sqlite3") as db:
        upstream, _ = db.upsert_job("fp-up", "trace", deps=[])
        downstream, _ = db.upsert_job("fp-down", "profile", deps=["fp-up"])
        ready = {row["id"] for row in db.ready_jobs()}
        assert ready == {upstream}

        assert db.claim_job(upstream)
        db.finish_job(upstream)
        ready = {row["id"] for row in db.ready_jobs()}
        assert ready == {downstream}


def test_failed_job_records_error_and_retries(tmp_path):
    with ResultsDB(tmp_path / "svc.sqlite3") as db:
        job_id, _ = db.upsert_job("fp", "trace", deps=[])
        assert db.claim_job(job_id)
        db.finish_job(job_id, error="TraceError: boom")
        row = db.job(job_id)
        assert row["status"] == "failed"
        assert "boom" in row["error"]

        assert db.retry_job(job_id)
        row = db.job(job_id)
        assert row["status"] == "pending"
        assert row["error"] is None
        assert not db.retry_job(job_id)  # only failed jobs retry


def test_recover_running_jobs(tmp_path):
    with ResultsDB(tmp_path / "svc.sqlite3") as db:
        job_id, _ = db.upsert_job("fp", "trace", deps=[])
        assert db.claim_job(job_id)
        assert db.recover_running_jobs() == 1
        assert db.job(job_id)["status"] == "pending"


def test_results_upsert_and_runs_join(tmp_path):
    with ResultsDB(tmp_path / "svc.sqlite3") as db:
        request_id = db.insert_request("fp", "asp", 0.1, 1234, "{}")
        db.claim_request(request_id)
        db.record_result(request_id, {"relative_errors": {"cycles": 0.01}})
        db.finish_request(request_id, "completed")
        db.record_result(request_id, {"relative_errors": {"cycles": 0.02}})

        assert db.result(request_id)["relative_errors"]["cycles"] == 0.02
        runs = db.runs(benchmark="asp")
        assert len(runs) == 1
        assert runs[0]["metrics"]["relative_errors"]["cycles"] == 0.02
        assert "request_json" not in runs[0]
        assert db.runs(benchmark="hwh") == []
        assert db.runs(status="failed") == []


def test_counts_summary(tmp_path):
    with ResultsDB(tmp_path / "svc.sqlite3") as db:
        db.insert_request("fp1", "asp", 0.1, 1234, "{}")
        request_id = db.insert_request("fp2", "hwh", 0.1, 1234, "{}")
        db.claim_request(request_id)
        db.upsert_job("fp-a", "trace", deps=[])
        done_id, _ = db.upsert_job("fp-b", "trace", deps=[], status="done")
        summary = db.counts()
    assert summary["requests"]["pending"] == 1
    assert summary["requests"]["running"] == 1
    assert summary["jobs"]["pending"] == 1
    assert summary["jobs"]["done"] == 1
    assert summary["results"] == 0


def test_concurrent_writers_record_all_results(tmp_path):
    """Two workers (separate connections, concurrent threads) write job
    transitions into one database without losing updates — the WAL +
    busy-timeout + short-transaction design in action."""
    path = tmp_path / "svc.sqlite3"
    jobs_per_writer = 25
    with ResultsDB(path) as db:
        ids = {
            writer: [
                db.upsert_job(f"fp-{writer}-{n}", "trace", deps=[])[0]
                for n in range(jobs_per_writer)
            ]
            for writer in ("a", "b")
        }

    failures: list[Exception] = []

    def worker(writer: str) -> None:
        try:
            with ResultsDB(path) as db:
                for job_id in ids[writer]:
                    assert db.claim_job(job_id)
                    db.finish_job(job_id)
        except Exception as exc:  # pragma: no cover - surfaced below
            failures.append(exc)

    threads = [
        threading.Thread(target=worker, args=(writer,)) for writer in ids
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert failures == []
    with ResultsDB(path) as db:
        summary = db.counts()
        assert summary["jobs"]["done"] == 2 * jobs_per_writer
        assert all(
            db.job(job_id)["attempts"] == 1
            for writer_ids in ids.values() for job_id in writer_ids
        )


def test_concurrent_claims_hand_out_each_job_once(tmp_path):
    """Optimistic claiming: racing claimers never both win one job."""
    path = tmp_path / "svc.sqlite3"
    with ResultsDB(path) as db:
        job_ids = [
            db.upsert_job(f"fp-{n}", "trace", deps=[])[0] for n in range(30)
        ]

    wins: dict[str, list[int]] = {"a": [], "b": []}
    failures: list[Exception] = []

    def claimer(name: str) -> None:
        try:
            with ResultsDB(path) as db:
                for job_id in job_ids:
                    if db.claim_job(job_id):
                        wins[name].append(job_id)
        except Exception as exc:  # pragma: no cover - surfaced below
            failures.append(exc)

    threads = [
        threading.Thread(target=claimer, args=(name,)) for name in wins
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert failures == []
    assert sorted(wins["a"] + wins["b"]) == job_ids
    assert not set(wins["a"]) & set(wins["b"])


def test_resolve_db_path_precedence(tmp_path, monkeypatch):
    monkeypatch.delenv("MEGSIM_DB", raising=False)
    assert resolve_db_path("x.sqlite3").name == "x.sqlite3"
    monkeypatch.setenv("MEGSIM_DB", str(tmp_path / "env.sqlite3"))
    assert resolve_db_path() == tmp_path / "env.sqlite3"
    assert resolve_db_path(tmp_path / "flag.sqlite3").name == "flag.sqlite3"
    monkeypatch.delenv("MEGSIM_DB")
    assert resolve_db_path().name == "service.sqlite3"


def test_wal_mode_is_active(tmp_path):
    with ResultsDB(tmp_path / "svc.sqlite3") as db:
        row = db._conn.execute("PRAGMA journal_mode").fetchone()
        assert row[0] == "wal"
