"""Request codec: fingerprint-preserving JSON round-trips."""

from __future__ import annotations

import json

import pytest

from repro.core.sampler import MEGsimOptions
from repro.errors import ServiceError
from repro.gpu.config import GPUConfig
from repro.pipeline import stage_fingerprints
from repro.pipeline.request import PipelineRequest
from repro.service.codec import (
    REQUEST_SCHEMA,
    REQUEST_SCHEMA_VERSION,
    decode_request,
    encode_request,
)


def test_default_request_round_trips():
    request = PipelineRequest.create("bbr1", scale=0.1)
    decoded = decode_request(encode_request(request))
    assert decoded == request


def test_round_trip_preserves_fingerprints():
    """The property the dedup machinery rests on: a decoded request
    addresses the exact same artifacts as the original."""
    request = PipelineRequest.create(
        "hwh",
        scale=0.25,
        options=MEGsimOptions(seed=7, max_k=5, projection_dims=3),
        config=GPUConfig(rendering_mode="imr", tile_size=16),
    )
    decoded = decode_request(encode_request(request))
    assert stage_fingerprints(decoded) == stage_fingerprints(request)


def test_round_trip_through_json_string():
    request = PipelineRequest.create("asp", scale=0.05)
    document = json.dumps(encode_request(request), sort_keys=True)
    assert decode_request(document) == request


def test_document_shape():
    document = encode_request(PipelineRequest.create("pvz", scale=0.5))
    assert document["schema"] == REQUEST_SCHEMA
    assert document["version"] == REQUEST_SCHEMA_VERSION
    assert document["alias"] == "pvz"
    assert document["scale"] == 0.5
    assert isinstance(document["options"], dict)
    assert isinstance(document["config"], dict)


def test_decode_rejects_bad_json():
    with pytest.raises(ServiceError, match="not JSON"):
        decode_request("{nope")


def test_decode_rejects_wrong_schema():
    document = encode_request(PipelineRequest.create("bbr1", scale=0.1))
    document["schema"] = "something-else"
    with pytest.raises(ServiceError, match="schema"):
        decode_request(document)


def test_decode_rejects_unknown_version():
    document = encode_request(PipelineRequest.create("bbr1", scale=0.1))
    document["version"] = 999
    with pytest.raises(ServiceError, match="version"):
        decode_request(document)


def test_decode_rejects_non_object():
    with pytest.raises(ServiceError, match="JSON object"):
        decode_request(json.dumps([1, 2, 3]))


class TestWorkloadField:
    """v2 carries the workload ref; v1 documents still decode."""

    def test_synthetic_requests_encode_a_null_workload(self):
        document = encode_request(PipelineRequest.create("hcr", scale=0.1))
        assert document["workload"] is None

    def test_scripted_ref_round_trips(self):
        request = PipelineRequest.create("hcr-osc", scale=0.05)
        assert request.workload is not None
        decoded = decode_request(encode_request(request))
        assert decoded == request
        assert stage_fingerprints(decoded) == stage_fingerprints(request)

    def test_replay_ref_round_trips_with_path(self, tmp_path):
        from repro.workloads import export_workload_file, make_benchmark
        from repro.workloads.registry import _DYNAMIC, register_workload_file

        path = tmp_path / "cap.jsonl"
        export_workload_file(make_benchmark("hcr", scale=0.05), path)
        saved = dict(_DYNAMIC)
        try:
            ref = register_workload_file(str(path))
            request = PipelineRequest.create(ref.name)
        finally:
            _DYNAMIC.clear()
            _DYNAMIC.update(saved)
        decoded = decode_request(encode_request(request))
        assert decoded == request
        # The capture path survives, so a worker process can re-resolve
        # the ref without access to this process's registry table.
        assert decoded.workload.path == str(path)

    def test_v1_document_decodes_with_no_workload(self):
        document = encode_request(PipelineRequest.create("bbr1", scale=0.1))
        document["version"] = 1
        del document["workload"]
        decoded = decode_request(document)
        assert decoded.workload is None
        assert decoded == PipelineRequest.create("bbr1", scale=0.1)
