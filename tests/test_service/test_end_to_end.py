"""Submit -> serve -> results: the whole service against a real store.

These tests pin the acceptance criteria of the service: results coming
out of the job queue are numerically identical to the direct pipeline
path, and resubmitting identical work performs zero new stage
executions (proven by counters, not by timing).
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.runner import evaluate_benchmark
from repro.obs import collecting
from repro.parallel import ParallelConfig
from repro.pipeline import STAGES
from repro.service import (
    ResultsDB,
    assemble_result,
    build_requests,
    serve,
    submit_requests,
)
from repro.store import ArtifactStore, store_scope

ALIAS = "bbr1"
SCALE = 0.02


@pytest.fixture
def store(tmp_path):
    """A cold, test-private store installed process-wide.

    ``store_scope`` restores the session store afterwards even though
    workers may re-install the store via ``set_store`` mid-test.
    """
    with store_scope(ArtifactStore(root=tmp_path / "store")) as handle:
        yield handle


@pytest.fixture
def db_path(tmp_path):
    return tmp_path / "svc.sqlite3"


def _submit(db_path, benchmarks=(ALIAS,), scale=SCALE) -> list[int]:
    with ResultsDB(db_path) as db:
        return submit_requests(db, build_requests(list(benchmarks), scale=scale))


def test_serve_once_completes_a_submission(store, db_path):
    ids = _submit(db_path)
    with collecting() as collector:
        summary = serve(db_path, once=True)

    assert summary["requests"]["completed"] == 1
    assert summary["requests"]["failed"] == 0
    assert summary["jobs"]["done"] == len(STAGES)
    assert summary["results"] == 1
    assert collector.counters["service.jobs.created"] == len(STAGES)
    assert collector.counters["service.jobs.executed"] == len(STAGES)
    for stage in STAGES:
        assert collector.counters[f"pipeline.computed.{stage.name}"] >= 1

    with ResultsDB(db_path) as db:
        result = db.result(ids[0])
    assert result["benchmark"] == ALIAS
    assert result["schema"] == "megsim-result"


def test_service_results_match_the_direct_path(store, db_path):
    """The numbers archived by the service are byte-identical to what
    `evaluate_benchmark` computes monolithically, recomputed from
    scratch with the store bypassed entirely."""
    ids = _submit(db_path)
    serve(db_path, once=True)
    with ResultsDB(db_path) as db:
        result = db.result(ids[0])

    direct = evaluate_benchmark(ALIAS, scale=SCALE, use_cache=False)
    assert result["relative_errors"] == direct.relative_errors()
    assert result["totals"] == {
        metric: getattr(direct.totals, metric)
        for metric in result["totals"]
    }
    assert result["estimates"] == {
        metric: getattr(direct.estimate, metric)
        for metric in result["estimates"]
    }
    assert result["reduction_factor"] == direct.reduction_factor
    assert result["representatives"] == direct.plan.selected_frame_count


def test_resubmission_is_fully_deduped(store, db_path):
    first = _submit(db_path)
    serve(db_path, once=True)

    with collecting() as collector:
        second = _submit(db_path)
        serve(db_path, once=True)

    # Zero new stage work: no executions, no recomputations — the six
    # existing done jobs are linked to the new request as-is.
    assert collector.counters["service.jobs.deduped.done"] == len(STAGES)
    assert "service.jobs.executed" not in collector.counters
    assert "service.jobs.created" not in collector.counters
    assert not any(
        name.startswith("pipeline.computed.") for name in collector.counters
    )

    with ResultsDB(db_path) as db:
        assert db.counts()["jobs"]["done"] == len(STAGES)
        assert db.result(second[0]) == db.result(first[0])


def test_artifacts_from_direct_runs_dedupe_into_the_service(store, db_path):
    """Work done outside the service (a plain evaluate/`megsim run`)
    is adopted through the store: jobs are born done, nothing executes."""
    evaluate_benchmark(ALIAS, scale=SCALE)  # populates the shared store

    ids = _submit(db_path)
    with collecting() as collector:
        serve(db_path, once=True)

    assert collector.counters["service.jobs.deduped.store"] == len(STAGES)
    assert "service.jobs.executed" not in collector.counters
    assert not any(
        name.startswith("pipeline.computed.") for name in collector.counters
    )
    with ResultsDB(db_path) as db:
        result = db.result(ids[0])
        assert result is not None
        sources = {
            row["source"] for row in db.jobs_for_request(ids[0])
        }
    assert sources == {"store"}


def test_serve_with_worker_pool_matches_serial(store, db_path):
    """`--jobs 2` routes jobs through real pool processes (which write
    their own terminal states into the database) without changing the
    archived numbers."""
    ids = _submit(db_path)
    summary = serve(db_path, once=True, parallel=ParallelConfig(jobs=2))

    assert summary["requests"]["completed"] == 1
    assert summary["jobs"]["done"] == len(STAGES)
    with ResultsDB(db_path) as db:
        result = db.result(ids[0])
    direct = evaluate_benchmark(ALIAS, scale=SCALE, use_cache=False)
    assert result["relative_errors"] == direct.relative_errors()


def test_corrupt_request_fails_cleanly(store, db_path):
    with ResultsDB(db_path) as db:
        request_id = db.insert_request("fp", ALIAS, SCALE, 1234, "{not json")
    summary = serve(db_path, once=True)

    assert summary["requests"]["failed"] == 1
    assert summary["results"] == 0
    with ResultsDB(db_path) as db:
        row = db.request(request_id)
        assert row["status"] == "failed"
        assert "ServiceError" in row["error"]


def test_failed_request_carries_the_job_error(store, db_path, monkeypatch):
    """A stage blowing up marks the job failed, and finalization rolls
    the first job error up into the request row."""
    import repro.service.worker as worker_module
    from repro.errors import SimulationError

    def exploding(request, name, store=None, fingerprints=None):
        raise SimulationError("injected stage failure")

    monkeypatch.setattr(worker_module, "materialize_stage", exploding)
    ids = _submit(db_path)
    with collecting() as collector:
        summary = serve(db_path, once=True)

    assert summary["requests"]["failed"] == 1
    assert collector.counters["service.jobs.failed"] >= 1
    with ResultsDB(db_path) as db:
        row = db.request(ids[0])
        assert row["status"] == "failed"
        assert "SimulationError" in row["error"]
        assert db.result(ids[0]) is None


def test_serve_persists_request_traces(store, db_path):
    """Completing a request writes its span tree beside the database:
    `results.trace_path` points at a megsim-trace artifact whose header
    and every recorded span answer to the request's trace id."""
    from repro.obs import read_trace_artifact

    ids = _submit(db_path)
    serve(db_path, once=True)  # no outer collector: serve installs one

    with ResultsDB(db_path) as db:
        (run,) = db.runs()
        assert run["id"] == ids[0]
        assert run["trace_id"], "submission minted no trace id"
        assert run["trace_path"], "finalization persisted no trace"

    artifact = read_trace_artifact(run["trace_path"])
    assert artifact["trace_id"] == run["trace_id"]
    assert artifact["meta"]["request_id"] == ids[0]
    names = sorted(root.name for root in artifact["roots"])
    assert names == sorted(
        ["service.schedule"] + [f"service.job.{s.name}" for s in STAGES]
    )
    for root in artifact["roots"]:
        if root.name == "service.schedule":
            continue
        assert root.attrs["trace_id"] == run["trace_id"], root.name
        assert root.attrs["request_id"] == ids[0], root.name


def test_job_spans_carry_the_request_trace_id(store, db_path):
    """The acceptance criterion: under an ambient collector, every
    executed job's span links back to the request that caused it."""
    ids = _submit(db_path)
    with ResultsDB(db_path) as db:
        trace_id = db.request(ids[0])["trace_id"]

    with collecting() as collector:
        serve(db_path, once=True)

    job_spans = [
        record for record in collector.spans
        if record.name.startswith("service.job.")
    ]
    assert len(job_spans) == len(STAGES)
    for record in job_spans:
        assert record.attrs["trace_id"] == trace_id
        assert record.attrs["request_id"] == ids[0]


def test_deduped_resubmission_trace_is_schedule_only(store, db_path):
    """A fully-deduped request executes nothing, so its persisted trace
    honestly contains just the schedule span."""
    from repro.obs import read_trace_artifact

    _submit(db_path)
    serve(db_path, once=True)
    second = _submit(db_path)
    serve(db_path, once=True)

    with ResultsDB(db_path) as db:
        run = [r for r in db.runs() if r["id"] == second[0]][0]
    artifact = read_trace_artifact(run["trace_path"])
    assert [root.name for root in artifact["roots"]] == ["service.schedule"]
    assert artifact["trace_id"] == run["trace_id"]


def test_on_drain_fires_after_progress_only(store, db_path):
    """The `--report` hook: called once when a drain follows progress,
    not at all when the queue was already empty."""
    calls = []
    _submit(db_path)
    serve(db_path, once=True, on_drain=lambda db: calls.append(db.path))
    assert len(calls) == 1
    assert calls[0].samefile(db_path)

    serve(db_path, once=True, on_drain=lambda db: calls.append(db.path))
    assert len(calls) == 1  # empty queue: no progress, no regeneration


def test_assemble_result_document_is_json_serializable(store):
    request = build_requests([ALIAS], scale=SCALE)[0]
    document = assemble_result(request, store)
    round_tripped = json.loads(json.dumps(document, sort_keys=True))
    assert round_tripped["fingerprints"]["estimate"]
    assert set(round_tripped["relative_errors"]) == {
        "cycles", "dram_accesses", "l2_accesses", "tile_cache_accesses"
    }


class TestWorkloadSubmission:
    """Scripted and replay keys flow through the service layer."""

    def test_empty_submission_is_the_synthetic_suite(self):
        requests = build_requests([], scale=SCALE)
        assert len(requests) == 8
        assert all(request.workload is None for request in requests)

    def test_scripted_key_carries_its_ref(self):
        (request,) = build_requests(["hcr-osc"], scale=SCALE)
        assert request.workload is not None
        assert request.workload.kind == "scripted"

    def test_unknown_key_lists_the_registry(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="hcr-drift"):
            build_requests(["doom"], scale=SCALE)

    def test_scripted_request_completes_end_to_end(self, tmp_path):
        from repro.service import assemble_result
        from repro.service.codec import decode_request, encode_request
        from repro.pipeline import run_pipeline, stage_fingerprints

        (request,) = build_requests(["hcr-flip"], scale=SCALE)
        # The database round trip a worker would see.
        request = decode_request(encode_request(request))
        store = ArtifactStore(tmp_path / "store")
        with store_scope(store):
            fingerprints = stage_fingerprints(request)
            run_pipeline(request, store=store, fingerprints=fingerprints)
            document = assemble_result(request, store, fingerprints)
        assert document["benchmark"] == "hcr-flip"
        assert document["relative_errors"]
