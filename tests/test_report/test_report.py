"""`megsim report`: data assembly, HTML rendering, determinism.

The acceptance criteria under test: the report document is plain JSON
gathered from whatever inputs exist (bench artifacts, the results
database, persisted traces); the renderer is a pure function of that
document — two renders of the same inputs are byte-identical, the page
is self-contained, and every user-controlled string is escaped.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ReportError
from repro.obs import Histogram, collecting, span, write_trace_artifact
from repro.report import (
    build_report,
    render_html,
    report_data,
    write_report,
)
from repro.report.data import (
    accuracy_speedup_points,
    discover_bench_artifacts,
    load_bench_artifact,
)
from repro.service import ResultsDB


def _bench_artifact(backend=None, speedups=None, rel_error=0.01,
                    wall=12.5):
    """A minimal but schema-complete megsim-bench document."""
    speedups = speedups if speedups is not None else {"bbr1": 8.0, "hwh": 6.0}
    hist = Histogram("fig7/cycles_rel_error")
    for value in (1.0, 2.0, 3.0, 50.0):
        hist.record(value)
    config = {} if backend is None else {"backend": backend}
    return {
        "schema": "megsim-bench",
        "version": 1,
        "suite": "smoke",
        "scale": 0.05,
        "total_wall_seconds": wall,
        "manifest": {"config": config},
        "metrics": {
            "fig7/cycles_rel_error": {
                "aggregates": hist.aggregates(),
                "state": hist.to_dict(),
            },
        },
        "benchmarks": {
            "fig7": {
                "description": "accuracy",
                "results": {
                    "accuracy": {
                        "rel_error.cycles": rel_error,
                        "rel_error.dram": rel_error * 2,
                    },
                    "counters": {},
                    "info": {},
                },
                "timing": {
                    "wall_seconds": 4.0,
                    "phases": [
                        {"name": "cycle.simulate", "count": 2,
                         "total_seconds": 3.0},
                        {"name": "functional.profile", "count": 1,
                         "total_seconds": 0.5},
                    ],
                    "timing_info": {},
                },
            },
            "speedup": {
                "description": "wall-clock speedup",
                "results": {"accuracy": {}, "counters": {}, "info": {}},
                "timing": {
                    "wall_seconds": 6.0,
                    "phases": [],
                    "timing_info": {
                        "per_benchmark_speedup": dict(speedups),
                        "overall_speedup": (
                            sum(speedups.values()) / len(speedups)
                            if speedups else 0.0
                        ),
                    },
                },
            },
        },
    }


def _write_artifacts(bench_dir, *artifacts):
    bench_dir.mkdir(parents=True, exist_ok=True)
    for index, artifact in enumerate(artifacts):
        path = bench_dir / f"BENCH_{index:02d}.json"
        path.write_text(json.dumps(artifact), encoding="utf-8")
    return bench_dir


def _service_db(tmp_path, with_trace=True, benchmark="bbr1"):
    """A completed request in a real database, optionally with a trace."""
    db_path = tmp_path / "svc.sqlite3"
    trace_path = None
    if with_trace:
        with collecting() as collector:
            with span("service.schedule", request_id=1, trace_id="t0" * 8):
                pass
            with span("service.job.plan", request_id=1, trace_id="t0" * 8,
                      worker="task:0"):
                pass
        trace_path = str(write_trace_artifact(
            tmp_path / "traces" / "request-1.jsonl", collector.roots,
            "t0" * 8, meta={"request_id": 1, "benchmark": benchmark,
                            "scale": 0.05},
        ))
    with ResultsDB(db_path) as db:
        request_id = db.insert_request(
            "fp", benchmark, 0.05, 1234, "{}", trace_id="t0" * 8,
        )
        db.claim_request(request_id)
        db.record_result(
            request_id,
            {"relative_errors": {"cycles": 0.004},
             "reduction_factor": 9.1},
            trace_path=trace_path,
        )
        db.finish_request(request_id, "completed")
    return db_path


class TestDataAssembly:
    def test_empty_inputs_yield_an_empty_document(self, tmp_path):
        data = report_data()
        assert data["schema"] == "megsim-report"
        assert data["bench"]["artifacts"] == []
        assert data["service"] == {"available": False}
        missing = report_data(db_path=tmp_path / "absent.sqlite3",
                              bench_dir=tmp_path / "absent")
        assert missing["service"] == {"available": False}

    def test_discovery_is_sorted_and_filtered(self, tmp_path):
        bench = tmp_path / "bench"
        bench.mkdir()
        (bench / "BENCH_b.json").write_text("{}")
        (bench / "BENCH_a.json").write_text("{}")
        (bench / "notes.txt").write_text("")
        (bench / "other.json").write_text("{}")
        names = [p.name for p in discover_bench_artifacts(bench)]
        assert names == ["BENCH_a.json", "BENCH_b.json"]
        assert discover_bench_artifacts(tmp_path / "absent") == []

    def test_corrupt_artifact_fails_loudly(self, tmp_path):
        bad = tmp_path / "BENCH_x.json"
        bad.write_text("{not json")
        with pytest.raises(ReportError, match="cannot read"):
            load_bench_artifact(bad)
        bad.write_text('{"schema": "something-else"}')
        with pytest.raises(ReportError, match="not a megsim-bench"):
            load_bench_artifact(bad)

    def test_artifact_summary_and_backend_default(self, tmp_path):
        bench = _write_artifacts(
            tmp_path / "bench", _bench_artifact(),
            _bench_artifact(backend="vector"),
        )
        data = report_data(bench_dir=bench)
        artifacts = data["bench"]["artifacts"]
        assert [a["backend"] for a in artifacts] == ["scalar", "vector"]
        assert data["bench"]["newest"] == "BENCH_01.json"
        fig7 = artifacts[0]["benchmarks"]["fig7"]
        assert fig7["accuracy"]["rel_error.cycles"] == 0.01
        assert fig7["phases"][0]["name"] == "cycle.simulate"

    def test_accuracy_speedup_points(self, tmp_path):
        bench = _write_artifacts(tmp_path / "bench", _bench_artifact())
        points = report_data(bench_dir=bench)["bench"]["points"]
        assert [(p["alias"], p["speedup"]) for p in points] == [
            ("bbr1", 8.0), ("hwh", 6.0),
        ]
        assert all(p["backend"] == "scalar" for p in points)
        # Mean of rel_error.cycles (0.01) and rel_error.dram (0.02).
        assert all(p["rel_error"] == pytest.approx(0.015) for p in points)
        # No speedup section, or no accuracy section: no points.
        assert accuracy_speedup_points([{
            "name": "x", "backend": "scalar", "benchmarks": {},
        }]) == []

    def test_histogram_rows_quote_rebuilt_percentiles(self, tmp_path):
        bench = _write_artifacts(tmp_path / "bench", _bench_artifact())
        data = report_data(bench_dir=bench)
        (row,) = data["bench"]["histograms"]
        assert row["name"] == "fig7/cycles_rel_error"
        assert row["count"] == 4
        # p95 is not in the artifact's precomputed aggregates; it only
        # exists because the histogram was rebuilt from state.
        assert row["p95"] == pytest.approx(50.0)

    def test_document_is_json_serializable(self, tmp_path):
        bench = _write_artifacts(tmp_path / "bench", _bench_artifact())
        db_path = _service_db(tmp_path)
        data = report_data(db_path=db_path, bench_dir=bench)
        json.dumps(data)  # must not raise


class TestServiceSections:
    def test_newest_traced_run_is_selected(self, tmp_path):
        db_path = _service_db(tmp_path)
        data = report_data(db_path=db_path)
        service = data["service"]
        assert service["available"]
        assert service["schema_version"] >= 3
        assert service["counts"]["requests"]["completed"] == 1
        trace = service["trace"]
        assert trace["request_id"] == 1
        assert trace["trace_id"] == "t0" * 8
        names = [row["name"] for row in trace["spans"]]
        assert names == ["service.schedule", "service.job.plan"]
        # Roots lay out sequentially; offsets are cumulative.
        assert trace["spans"][0]["offset"] == 0.0
        assert trace["spans"][1]["offset"] == pytest.approx(
            trace["spans"][0]["elapsed_seconds"]
        )

    def test_run_selector_without_a_trace_raises(self, tmp_path):
        db_path = _service_db(tmp_path, with_trace=False)
        with pytest.raises(ReportError, match="no persisted trace"):
            report_data(db_path=db_path, run=1)
        # And without --run the report degrades to no trace section.
        assert report_data(db_path=db_path)["service"]["trace"] is None

    def test_missing_trace_file_is_skipped_by_default(self, tmp_path):
        db_path = _service_db(tmp_path)
        (tmp_path / "traces" / "request-1.jsonl").unlink()
        assert report_data(db_path=db_path)["service"]["trace"] is None


class TestRendering:
    def _full_data(self, tmp_path):
        bench = _write_artifacts(
            tmp_path / "bench", _bench_artifact(),
            _bench_artifact(backend="vector"),
        )
        db_path = _service_db(tmp_path)
        return report_data(db_path=db_path, bench_dir=bench)

    def test_double_render_is_byte_identical(self, tmp_path):
        data = self._full_data(tmp_path)
        first = render_html(data)
        second = render_html(report_data(
            db_path=tmp_path / "svc.sqlite3", bench_dir=tmp_path / "bench",
        ))
        assert first == second

    def test_every_section_renders(self, tmp_path):
        page = render_html(self._full_data(tmp_path))
        for heading in ("Overview", "Accuracy vs speedup",
                        "Stage waterfalls", "Histogram percentiles",
                        "Experiment service", "Request trace"):
            assert f"<h2>{heading}</h2>" in page
        assert "<svg" in page
        assert "task:0" in page  # worker lineage on the waterfall
        assert "t0" * 8 in page  # the trace id

    def test_page_is_self_contained(self, tmp_path):
        page = render_html(self._full_data(tmp_path))
        for banned in ("<script", "http://", "https://", "src="):
            assert banned not in page

    def test_empty_document_still_renders_every_section(self):
        page = render_html(report_data())
        assert page.count("<h2>") == 6
        assert "no results database" in page

    def test_hostile_strings_are_escaped(self, tmp_path):
        db_path = _service_db(tmp_path, benchmark="<script>alert(1)")
        page = render_html(report_data(db_path=db_path))
        assert "<script>" not in page
        assert "&lt;script&gt;" in page

    def test_no_wall_clock_in_output(self, tmp_path):
        # Render, let the clock move, render again: byte-equal.
        import time

        data = self._full_data(tmp_path)
        first = render_html(data)
        time.sleep(0.01)
        assert render_html(data) == first


class TestWriteAndBuild:
    def test_write_report_creates_parents(self, tmp_path):
        target = write_report(
            tmp_path / "deep" / "nested" / "report.html", report_data(),
        )
        assert target.is_file()
        assert target.read_text(encoding="utf-8").startswith("<!DOCTYPE html>")

    def test_build_report_end_to_end(self, tmp_path):
        bench = _write_artifacts(tmp_path / "bench", _bench_artifact())
        db_path = _service_db(tmp_path)
        target = build_report(
            tmp_path / "report.html", db_path=db_path, bench_dir=bench,
        )
        page = target.read_text(encoding="utf-8")
        assert "Accuracy vs speedup" in page
        assert "bbr1" in page
