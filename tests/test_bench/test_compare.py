"""Regression gating: ratios, platform gating, artifact validation."""

from __future__ import annotations

import json
import math

import pytest

from repro.bench import (
    BENCH_SCHEMA,
    BENCH_SCHEMA_VERSION,
    compare_artifacts,
    load_artifact,
    regressions,
    render_comparison,
)
from repro.errors import ConfigError


def _artifact(
    wall: float = 10.0,
    err: float = 0.02,
    work: float = 100.0,
    platform: str = "linux-test",
    total: float = 20.0,
) -> dict:
    return {
        "schema": BENCH_SCHEMA,
        "schema_version": BENCH_SCHEMA_VERSION,
        "suite": "smoke",
        "scale": 0.05,
        "benchmarks": {
            "b": {
                "experiment": "table3",
                "description": "",
                "params": {},
                "results": {
                    "metrics": {},
                    "accuracy": {"err": err},
                    "counters": {"cycle.frames_simulated": work},
                    "info": {},
                },
                "timing": {
                    "wall_seconds": wall, "phases": [], "timing_info": {},
                },
            }
        },
        "metrics": {},
        "total_wall_seconds": total,
        "manifest": {"platform": platform, "fingerprint": "f"},
    }


class TestGating:
    def test_identical_artifacts_pass(self):
        deltas = compare_artifacts(_artifact(), _artifact())
        assert regressions(deltas) == []

    def test_slower_baseline_passes(self):
        # Current run is FASTER than the doctored-slower baseline.
        deltas = compare_artifacts(
            _artifact(wall=10.0, total=20.0),
            _artifact(wall=30.0, total=60.0),
            threshold=1.15,
        )
        assert regressions(deltas) == []

    def test_faster_baseline_beyond_threshold_fails(self):
        deltas = compare_artifacts(
            _artifact(wall=10.0, total=20.0),
            _artifact(wall=3.0, total=6.0),
            threshold=1.15,
        )
        failed = regressions(deltas)
        assert failed and all(d.kind == "wall_time" for d in failed)

    def test_within_threshold_passes(self):
        deltas = compare_artifacts(
            _artifact(wall=11.0), _artifact(wall=10.0), threshold=1.15
        )
        assert regressions(deltas) == []

    def test_platform_mismatch_demotes_wall_time(self):
        deltas = compare_artifacts(
            _artifact(wall=30.0, platform="linux-a"),
            _artifact(wall=10.0, platform="darwin-b"),
        )
        wall = [d for d in deltas if d.kind == "wall_time" and d.regression]
        assert wall and all(not d.enforced for d in wall)
        assert regressions(deltas) == []

    def test_accuracy_regression_enforced_across_platforms(self):
        deltas = compare_artifacts(
            _artifact(err=0.05, platform="linux-a"),
            _artifact(err=0.02, platform="darwin-b"),
        )
        failed = regressions(deltas)
        assert [d.kind for d in failed] == ["accuracy"]
        assert failed[0].ratio == pytest.approx(2.5)

    def test_work_regression_enforced(self):
        deltas = compare_artifacts(
            _artifact(work=200.0), _artifact(work=100.0)
        )
        assert [d.kind for d in regressions(deltas)] == ["work"]

    def test_improvements_never_fail(self):
        deltas = compare_artifacts(
            _artifact(wall=1.0, err=0.001, work=10.0, total=2.0),
            _artifact(wall=10.0, err=0.02, work=100.0, total=20.0),
        )
        assert regressions(deltas) == []

    def test_zero_baseline_regresses_on_any_value(self):
        deltas = compare_artifacts(_artifact(err=0.01), _artifact(err=0.0))
        failed = regressions(deltas)
        assert failed and math.isinf(failed[0].ratio)

    def test_zero_baseline_zero_current_passes(self):
        deltas = compare_artifacts(_artifact(err=0.0), _artifact(err=0.0))
        assert regressions(deltas) == []

    def test_missing_quantities_are_skipped(self):
        baseline = _artifact()
        del baseline["benchmarks"]["b"]["results"]["counters"][
            "cycle.frames_simulated"
        ]
        deltas = compare_artifacts(_artifact(work=1e9), baseline)
        assert all(d.kind != "work" for d in deltas)

    def test_threshold_below_one_rejected(self):
        with pytest.raises(ConfigError):
            compare_artifacts(_artifact(), _artifact(), threshold=0.9)


class TestLoadArtifact:
    def test_round_trip(self, tmp_path):
        target = tmp_path / "a.json"
        target.write_text(json.dumps(_artifact()))
        assert load_artifact(target)["suite"] == "smoke"

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigError):
            load_artifact(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        target = tmp_path / "bad.json"
        target.write_text("{not json")
        with pytest.raises(ConfigError):
            load_artifact(target)

    def test_wrong_schema(self, tmp_path):
        target = tmp_path / "other.json"
        target.write_text(json.dumps({"schema": "something-else"}))
        with pytest.raises(ConfigError):
            load_artifact(target)

    def test_wrong_version(self, tmp_path):
        artifact = _artifact()
        artifact["schema_version"] = BENCH_SCHEMA_VERSION + 1
        target = tmp_path / "future.json"
        target.write_text(json.dumps(artifact))
        with pytest.raises(ConfigError):
            load_artifact(target)


class TestRender:
    def test_reports_regressions_and_counts(self):
        deltas = compare_artifacts(
            _artifact(wall=30.0, err=0.05),
            _artifact(wall=10.0, err=0.02),
            threshold=1.15,
        )
        text = render_comparison(deltas, threshold=1.15)
        assert "REGRESSION" in text
        assert "threshold 1.15x" in text

    def test_advisory_marking(self):
        deltas = compare_artifacts(
            _artifact(wall=30.0, platform="a"),
            _artifact(wall=10.0, platform="b"),
        )
        text = render_comparison(deltas)
        assert "advisory" in text
        assert "0 regression(s)" in text
