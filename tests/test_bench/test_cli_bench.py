"""``megsim bench`` end to end: artifacts, gating exit codes, --jobs."""

from __future__ import annotations

import json

from repro.bench import load_artifact
from repro.cli import main


def _deterministic(artifact: dict) -> str:
    return json.dumps(
        {
            "benchmarks": {
                name: section["results"]
                for name, section in artifact["benchmarks"].items()
            },
            "metrics": artifact["metrics"],
            "fingerprint": artifact["manifest"]["fingerprint"],
        },
        sort_keys=True,
    )


class TestList:
    def test_lists_registry(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out and "smoke" in out


class TestRun:
    def test_writes_schema_versioned_artifact(self, tiny_registry, tmp_path):
        out = tmp_path / "BENCH_smoke.json"
        assert main(["bench", "--suite", "smoke", "--out", str(out)]) == 0
        artifact = load_artifact(out)
        assert artifact["schema"] == "megsim-bench"
        assert set(artifact["benchmarks"]) == {"tiny1", "tiny2"}

    def test_jobs_env_gives_byte_identical_results(
        self, tiny_registry, tmp_path, monkeypatch
    ):
        serial = tmp_path / "serial.json"
        pooled = tmp_path / "pooled.json"
        monkeypatch.setenv("MEGSIM_JOBS", "1")
        assert main(["bench", "--out", str(serial)]) == 0
        monkeypatch.setenv("MEGSIM_JOBS", "auto")
        assert main(["bench", "--out", str(pooled)]) == 0
        first = _deterministic(load_artifact(serial))
        second = _deterministic(load_artifact(pooled))
        assert first == second

    def test_metrics_export_flag(self, tiny_registry, tmp_path):
        out = tmp_path / "a.json"
        metrics = tmp_path / "metrics.prom"
        assert main([
            "bench", "--out", str(out), "--metrics", str(metrics),
        ]) == 0
        assert "# TYPE " in metrics.read_text()


class TestCompareGate:
    def _doctor(self, artifact: dict, factor: float) -> dict:
        doctored = json.loads(json.dumps(artifact))
        for section in doctored["benchmarks"].values():
            section["timing"]["wall_seconds"] *= factor
        doctored["total_wall_seconds"] *= factor
        return doctored

    def test_slower_baseline_exits_zero(self, tiny_registry, tmp_path):
        out = tmp_path / "a.json"
        assert main(["bench", "--out", str(out)]) == 0
        baseline = tmp_path / "slow.json"
        baseline.write_text(
            json.dumps(self._doctor(load_artifact(out), 100.0))
        )
        assert main([
            "bench", "--out", str(tmp_path / "b.json"),
            "--compare", str(baseline), "--threshold", "1.15",
        ]) == 0

    def test_faster_baseline_exits_nonzero(self, tiny_registry, tmp_path):
        out = tmp_path / "a.json"
        assert main(["bench", "--out", str(out)]) == 0
        baseline = tmp_path / "fast.json"
        baseline.write_text(
            json.dumps(self._doctor(load_artifact(out), 1.0 / 100.0))
        )
        assert main([
            "bench", "--out", str(tmp_path / "b.json"),
            "--compare", str(baseline), "--threshold", "1.15",
        ]) == 1
