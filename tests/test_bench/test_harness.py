"""The suite runner: artifact shape, determinism, worker fan-out."""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    BENCH_SCHEMA,
    BENCH_SCHEMA_VERSION,
    render_bench_report,
    run_suite,
    write_artifact,
)
from repro.errors import ConfigError
from repro.obs import collecting
from repro.parallel import ParallelConfig


def _deterministic(artifact: dict) -> str:
    """The byte-compared portion of an artifact, as canonical JSON."""
    return json.dumps(
        {
            "benchmarks": {
                name: section["results"]
                for name, section in artifact["benchmarks"].items()
            },
            "metrics": artifact["metrics"],
            "fingerprint": artifact["manifest"]["fingerprint"],
        },
        sort_keys=True,
    )


class TestArtifactShape:
    def test_schema_and_sections(self, tiny_registry):
        artifact = run_suite("smoke", scale=0.5)
        assert artifact["schema"] == BENCH_SCHEMA
        assert artifact["schema_version"] == BENCH_SCHEMA_VERSION
        assert artifact["suite"] == "smoke"
        assert artifact["scale"] == 0.5
        assert set(artifact["benchmarks"]) == {"tiny1", "tiny2"}
        assert artifact["total_wall_seconds"] > 0.0
        assert artifact["manifest"]["fingerprint"]

    def test_results_timing_split(self, tiny_registry):
        artifact = run_suite("smoke", scale=0.5)
        section = artifact["benchmarks"]["tiny1"]
        assert set(section["results"]) == {
            "metrics", "accuracy", "counters", "info",
        }
        assert set(section["timing"]) == {
            "wall_seconds", "phases", "timing_info",
        }
        assert section["timing"]["timing_info"] == {"speedup": 10.0}
        aggregates = section["results"]["metrics"]["x"]["aggregates"]
        assert aggregates["count"] == 3
        assert aggregates["min"] == 1.0 and aggregates["max"] == 3.0
        assert section["results"]["accuracy"] == {"err": 0.25}

    def test_params_recorded(self):
        # fig5 is the registry's parameterized spec; a 40-frame run is
        # functional profiling only, so this stays fast.
        artifact = run_suite("full", scale=0.02, names=["fig5"])
        assert artifact["benchmarks"]["fig5"]["params"] == {"alias": "bbr1"}

    def test_registry_histograms_are_namespaced(self, tiny_registry):
        artifact = run_suite("smoke", scale=0.5)
        assert "tiny1/x" in artifact["metrics"]
        assert "tiny2/x" in artifact["metrics"]
        state = artifact["metrics"]["tiny1/x"]["state"]
        assert state["count"] == 3

    def test_unknown_bench_name_rejected(self, tiny_registry):
        with pytest.raises(ConfigError):
            run_suite("smoke", scale=0.5, names=["nope"])

    def test_unknown_suite_rejected(self, tiny_registry):
        with pytest.raises(ConfigError):
            run_suite("nightly")


class TestDeterminism:
    def test_serial_and_pooled_artifacts_match(self, tiny_registry):
        serial = run_suite("smoke", scale=0.5)
        pooled = run_suite(
            "smoke", scale=0.5, parallel=ParallelConfig(jobs=2),
            jobs_requested=2,
        )
        assert _deterministic(serial) == _deterministic(pooled)
        assert pooled["manifest"]["jobs"] == {"requested": "2", "resolved": 2}
        assert serial["manifest"]["jobs"] == {"requested": None, "resolved": 1}

    def test_repeat_runs_are_byte_identical(self, tiny_registry):
        assert _deterministic(run_suite("smoke", scale=0.5)) == (
            _deterministic(run_suite("smoke", scale=0.5))
        )


class TestObservability:
    def test_outer_collector_receives_suite_spans(self, tiny_registry):
        with collecting() as outer:
            run_suite("smoke", scale=0.5)
        names = {record.name for record in outer.spans}
        assert "bench.suite.smoke" in names
        assert "bench.tiny1" in names and "bench.tiny2" in names
        assert "tiny1/x" in outer.metrics.names()


class TestWriteArtifact:
    def test_round_trips_as_sorted_json(self, tiny_registry, tmp_path):
        artifact = run_suite("smoke", scale=0.5)
        target = write_artifact(artifact, tmp_path / "deep" / "a.json")
        loaded = json.loads(target.read_text())
        assert loaded["schema"] == BENCH_SCHEMA
        assert target.read_text() == (
            json.dumps(artifact, indent=2, sort_keys=True) + "\n"
        )


class TestReport:
    def test_mentions_every_benchmark(self, tiny_registry):
        artifact = run_suite("smoke", scale=0.5)
        report = render_bench_report(artifact)
        assert "tiny1" in report and "tiny2" in report
        assert "fingerprint" in report
