"""Shared fixtures: a tiny benchmark registry for fast harness tests.

The real registry wraps whole paper experiments (seconds each); these
tests swap in specs built on ``table1`` (the GPU-config table — no
simulation, effectively instant) with hand-written extractors, so the
harness machinery (fan-out, histogram namespacing, artifact assembly,
CLI round trips) is exercised in milliseconds.
"""

from __future__ import annotations

import pytest

from repro.bench import harness, registry
from repro.bench.registry import BenchOutcome, BenchSpec


def _extract_one(result) -> BenchOutcome:
    return BenchOutcome(
        metrics={"x": [1.0, 2.0, 3.0], "y": [0.5]},
        accuracy={"err": 0.25},
        info={"rows": len(result.data)},
        timing_info={"speedup": 10.0},
    )


def _extract_two(result) -> BenchOutcome:
    return BenchOutcome(
        metrics={"x": [4.0, 8.0]},
        info={"rows": len(result.data)},
    )


TINY_BENCHES = {
    "tiny1": BenchSpec(
        name="tiny1", experiment="table1", suites=("smoke", "full"),
        description="tiny benchmark one", scaled=False,
        extract=_extract_one,
    ),
    "tiny2": BenchSpec(
        name="tiny2", experiment="table1", suites=("smoke", "full"),
        description="tiny benchmark two", scaled=False,
        extract=_extract_two,
    ),
}


@pytest.fixture
def tiny_registry(monkeypatch):
    """Swap the benchmark registry for the two instant specs above.

    Both the registry module and the harness module (which imported the
    dict by name) are patched, so lookups agree everywhere; pool workers
    inherit the patch through fork.
    """
    monkeypatch.setattr(registry, "BENCHES", TINY_BENCHES)
    monkeypatch.setattr(harness, "BENCHES", TINY_BENCHES)
    return TINY_BENCHES
