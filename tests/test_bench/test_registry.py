"""The benchmark registry: suites, run order, extractors."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import EXPERIMENTS, ExperimentResult
from repro.bench.registry import (
    BENCHES,
    SUITES,
    BenchOutcome,
    BenchSpec,
    bench_names,
)
from repro.errors import ConfigError
from repro.gpu.stats import KEY_METRICS


class TestCatalog:
    def test_every_spec_is_well_formed(self):
        for name, spec in BENCHES.items():
            assert spec.name == name
            assert spec.experiment in EXPERIMENTS
            assert spec.description
            assert spec.suites
            assert all(suite in SUITES for suite in spec.suites)
            assert callable(spec.extract)

    def test_smoke_is_a_subset_of_full(self):
        assert set(bench_names("smoke")) <= set(bench_names("full"))

    def test_smoke_members(self):
        assert bench_names("smoke") == [
            "table3", "fig7", "speedup", "adversarial", "parity"
        ]

    def test_suite_filter_preserves_run_order(self):
        order = {name: index for index, name in enumerate(bench_names())}
        for suite in SUITES:
            names = bench_names(suite)
            assert names == sorted(names, key=order.__getitem__)

    def test_unknown_suite_rejected(self):
        with pytest.raises(ConfigError):
            bench_names("nightly")


class TestSpecRun:
    def test_unscaled_spec_runs_without_scale(self):
        spec = BenchSpec(
            name="t", experiment="table1", suites=("smoke",),
            description="config table", scaled=False,
            extract=lambda result: BenchOutcome(info={"keys": len(result.data)}),
        )
        result, outcome = spec.run(0.25)
        assert result.name == "table1"
        assert outcome.info["keys"] > 0

    def test_default_extractor_is_empty(self):
        spec = BenchSpec(
            name="t", experiment="table1", suites=("smoke",),
            description="d", scaled=False,
        )
        _, outcome = spec.run(1.0)
        assert outcome.metrics == {} and outcome.accuracy == {}


class TestExtractors:
    def test_table3(self):
        result = ExperimentResult(
            name="table3",
            data={
                "bbr1": {"reduction": 9.0, "megsim_frames": 10},
                "srge": {"reduction": 12.0, "megsim_frames": 8},
                "average_reduction": 10.5,
            },
            report="",
        )
        outcome = BENCHES["table3"].extract(result)
        assert sorted(outcome.metrics["reduction"]) == [9.0, 12.0]
        assert outcome.info["average_reduction"] == 10.5

    def test_fig7_accuracy_keys(self):
        per = {metric: 0.02 for metric in KEY_METRICS}
        result = ExperimentResult(
            name="fig7",
            data={"per_benchmark": {"bbr1": dict(per)}, "average": dict(per)},
            report="",
        )
        outcome = BENCHES["fig7"].extract(result)
        assert set(outcome.accuracy) == {
            f"rel_error.{metric}" for metric in KEY_METRICS
        }
        assert len(outcome.metrics["rel_error"]) == len(KEY_METRICS)

    def test_fig3_clamps_negative_correlations(self):
        result = ExperimentResult(
            name="fig3",
            data={
                "per_benchmark": {"bbr1": {"shaders": -0.1},
                                  "srge": {"shaders": 0.9}},
                "average": {"shaders": 0.4},
            },
            report="",
        )
        outcome = BENCHES["fig3"].extract(result)
        assert outcome.metrics["correlation_shaders"] == [0.0, 0.9]

    def test_speedup_keeps_wall_clock_out_of_results(self):
        result = ExperimentResult(
            name="speedup",
            data={
                "bbr1": {"frame_reduction": 9.0, "speedup": 8.5,
                         "full_seconds": 2.0, "megsim_seconds": 0.25},
                "overall_speedup": 8.5,
            },
            report="",
        )
        outcome = BENCHES["speedup"].extract(result)
        assert outcome.metrics == {"frame_reduction": [9.0]}
        assert outcome.timing_info["overall_speedup"] == 8.5
        # Wall-clock-derived values must never reach the deterministic
        # sections (metrics/accuracy/info).
        assert outcome.accuracy == {}

    def test_parity_keeps_speedup_out_of_results(self):
        result = ExperimentResult(
            name="backend_compare",
            data={
                "bbr1": {"identical": True, "frames_checked": 16,
                         "mismatches": [], "speedup": 2.5},
                "all_identical": True,
            },
            report="",
        )
        outcome = BENCHES["parity"].extract(result)
        assert outcome.accuracy == {"parity.identical": 1.0}
        assert outcome.metrics == {"frames_checked": [16.0]}
        assert outcome.timing_info["vector_speedup"] == {"bbr1": 2.5}
