"""MEG001 (unseeded randomness) and MEG002 (wall-clock) fixtures."""

from __future__ import annotations

from tests.test_lint.conftest import messages, rule_ids


class TestUnseededRandom:
    def test_stdlib_global_rng_flagged(self, lint_fixture):
        result = lint_fixture(
            {"src/repro/core/x.py": """\
                import random

                def pick(items):
                    return random.choice(items)
            """},
            select=("MEG001",),
        )
        assert rule_ids(result) == ["MEG001"]
        assert "random.choice" in messages(result)

    def test_from_import_alias_flagged(self, lint_fixture):
        result = lint_fixture(
            {"src/repro/core/x.py": """\
                from random import shuffle as mix

                def scramble(items):
                    mix(items)
            """},
            select=("MEG001",),
        )
        assert rule_ids(result) == ["MEG001"]
        assert "random.shuffle" in messages(result)

    def test_module_level_seed_flagged(self, lint_fixture):
        result = lint_fixture(
            {"src/repro/gpu/x.py": """\
                import random

                random.seed(0)
            """},
            select=("MEG001",),
        )
        assert rule_ids(result) == ["MEG001"]

    def test_numpy_global_state_flagged(self, lint_fixture):
        result = lint_fixture(
            {"src/repro/core/x.py": """\
                import numpy as np

                def noise(n):
                    return np.random.rand(n)
            """},
            select=("MEG001",),
        )
        assert rule_ids(result) == ["MEG001"]
        assert "numpy.random.rand" in messages(result)

    def test_unseeded_default_rng_flagged(self, lint_fixture):
        result = lint_fixture(
            {"src/repro/core/x.py": """\
                import numpy as np

                def rng():
                    return np.random.default_rng()
            """},
            select=("MEG001",),
        )
        assert rule_ids(result) == ["MEG001"]
        assert "without a seed" in messages(result)

    def test_seeded_instances_pass(self, lint_fixture):
        result = lint_fixture(
            {"src/repro/core/x.py": """\
                import random

                import numpy as np

                def rngs(seed):
                    return random.Random(seed), np.random.default_rng(seed)
            """},
            select=("MEG001",),
        )
        assert result.findings == []

    def test_submodule_import_alias_flagged(self, lint_fixture):
        # `import numpy.random as nr` used to evade the per-file import
        # table; the flow-grade resolver canonicalizes it.
        result = lint_fixture(
            {"src/repro/core/x.py": """\
                import numpy.random as nr

                def noise(n):
                    return nr.rand(n)
            """},
            select=("MEG001",),
        )
        assert rule_ids(result) == ["MEG001"]
        assert "numpy.random.rand" in messages(result)

    def test_assignment_alias_flagged(self, lint_fixture):
        result = lint_fixture(
            {"src/repro/core/x.py": """\
                import random

                _draw = random.random

                def jitter():
                    return _draw()
            """},
            select=("MEG001",),
        )
        assert rule_ids(result) == ["MEG001"]
        assert "random.random" in messages(result)

    def test_outside_determinism_paths_pass(self, lint_fixture):
        # repro.analysis is not a determinism path: studies may use
        # whatever randomness they like (they seed for other reasons).
        result = lint_fixture(
            {"src/repro/analysis/x.py": """\
                import random

                def jitter():
                    return random.random()
            """},
            select=("MEG001",),
        )
        assert result.findings == []


class TestWallClock:
    def test_time_time_flagged(self, lint_fixture):
        result = lint_fixture(
            {"src/repro/core/x.py": """\
                import time

                def stamp():
                    return time.time()
            """},
            select=("MEG002",),
        )
        assert rule_ids(result) == ["MEG002"]
        assert "repro.obs" in messages(result)

    def test_from_import_perf_counter_flagged(self, lint_fixture):
        result = lint_fixture(
            {"src/repro/gpu/x.py": """\
                from time import perf_counter

                def tick():
                    return perf_counter()
            """},
            select=("MEG002",),
        )
        assert rule_ids(result) == ["MEG002"]

    def test_datetime_now_flagged(self, lint_fixture):
        result = lint_fixture(
            {"src/repro/cli.py": """\
                from datetime import datetime

                def today():
                    return datetime.now()
            """},
            select=("MEG002",),
        )
        assert rule_ids(result) == ["MEG002"]

    def test_from_import_rename_flagged(self, lint_fixture):
        # `from time import time as _t` — the aliased-import evasion.
        result = lint_fixture(
            {"src/repro/core/x.py": """\
                from time import time as _t

                def stamp():
                    return _t()
            """},
            select=("MEG002",),
        )
        assert rule_ids(result) == ["MEG002"]
        assert "time.time" in messages(result)

    def test_assignment_alias_flagged(self, lint_fixture):
        result = lint_fixture(
            {"src/repro/core/x.py": """\
                import time

                _clock = time.time

                def stamp():
                    return _clock()
            """},
            select=("MEG002",),
        )
        assert rule_ids(result) == ["MEG002"]
        assert "time.time" in messages(result)

    def test_harmless_rename_passes(self, lint_fixture):
        result = lint_fixture(
            {"src/repro/core/x.py": """\
                from time import sleep as pause

                def wait():
                    pause(0)
            """},
            select=("MEG002",),
        )
        assert result.findings == []

    def test_obs_subtree_is_exempt(self, lint_fixture):
        result = lint_fixture(
            {"src/repro/obs/x.py": """\
                import time

                def stamp():
                    return time.time()
            """},
            select=("MEG002",),
        )
        assert result.findings == []

    def test_non_clock_time_use_passes(self, lint_fixture):
        result = lint_fixture(
            {"src/repro/core/x.py": """\
                import time

                def pause():
                    time.sleep(0)
            """},
            select=("MEG002",),
        )
        assert result.findings == []
