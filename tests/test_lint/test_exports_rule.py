"""MEG009: ``__all__`` consistency."""

from __future__ import annotations

from tests.test_lint.conftest import messages, rule_ids


class TestDunderAll:
    def test_phantom_export_flagged(self, lint_fixture):
        result = lint_fixture(
            {"src/repro/core/__init__.py": """\
                from repro.core.kmeans import kmeans

                __all__ = ["kmeans", "bic_score"]
            """},
            select=("MEG009",),
        )
        assert rule_ids(result) == ["MEG009"]
        assert "'bic_score'" in messages(result)

    def test_bound_exports_pass(self, lint_fixture):
        result = lint_fixture(
            {"src/repro/core/__init__.py": """\
                from repro.core.kmeans import kmeans
                from repro.core.bic import bic_score as bic

                THRESHOLD = 0.9

                def helper():
                    return None

                __all__ = ["kmeans", "bic", "THRESHOLD", "helper"]
            """},
            select=("MEG009",),
        )
        assert result.findings == []

    def test_conditional_import_counts_as_binding(self, lint_fixture):
        result = lint_fixture(
            {"src/repro/core/__init__.py": """\
                try:
                    from repro.core.fast import solve
                except ImportError:
                    solve = None

                __all__ = ["solve"]
            """},
            select=("MEG009",),
        )
        assert result.findings == []

    def test_non_literal_all_flagged(self, lint_fixture):
        result = lint_fixture(
            {"src/repro/core/__init__.py": """\
                names = ["kmeans"]
                __all__ = names + ["extra"]
            """},
            select=("MEG009",),
        )
        assert rule_ids(result) == ["MEG009"]
        assert "literal" in messages(result)

    def test_module_without_all_is_ignored(self, lint_fixture):
        result = lint_fixture(
            {"src/repro/core/x.py": "value = 1\n"},
            select=("MEG009",),
        )
        assert result.findings == []
