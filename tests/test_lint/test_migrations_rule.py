"""MEG013: migration-chain contiguity, static replay, SQLite agreement."""

from __future__ import annotations

from tests.test_lint.conftest import messages, rule_ids

DB = "src/repro/service/db.py"


def db_module(migrations: str, schema_version: str = "SCHEMA_VERSION = 2"):
    return {DB: f"{schema_version}\n\nMIGRATIONS = {migrations}\n"}


GOOD_CHAIN = """{
    1: (
        "CREATE TABLE jobs (id INTEGER PRIMARY KEY, payload TEXT)",
        "CREATE TABLE runs (id INTEGER PRIMARY KEY, job_id INTEGER)",
    ),
    2: (
        "ALTER TABLE jobs ADD COLUMN state TEXT",
        "CREATE INDEX idx_jobs_state ON jobs (state)",
    ),
}"""


class TestMigrationChain:
    def test_sound_chain_passes(self, lint_fixture):
        result = lint_fixture(db_module(GOOD_CHAIN), select=("MEG013",))
        assert result.findings == []

    def test_missing_migrations_table_is_a_finding(self, lint_fixture):
        result = lint_fixture(
            {DB: "SCHEMA_VERSION = 1\n"}, select=("MEG013",)
        )
        assert rule_ids(result) == ["MEG013"]
        assert "no literal MIGRATIONS table" in messages(result)

    def test_version_gap_is_a_finding(self, lint_fixture):
        result = lint_fixture(
            db_module(
                """{
                    1: ("CREATE TABLE jobs (id INTEGER PRIMARY KEY)",),
                    3: ("ALTER TABLE jobs ADD COLUMN state TEXT",),
                }""",
                schema_version="SCHEMA_VERSION = 3",
            ),
            select=("MEG013",),
        )
        assert "MEG013" in rule_ids(result)
        assert "contiguous from 1" in messages(result)

    def test_schema_version_mismatch_is_a_finding(self, lint_fixture):
        result = lint_fixture(
            db_module(GOOD_CHAIN, schema_version="SCHEMA_VERSION = 9"),
            select=("MEG013",),
        )
        assert rule_ids(result) == ["MEG013"]
        text = messages(result)
        assert "SCHEMA_VERSION is 9" in text
        assert "chain ends at 2" in text

    def test_alter_on_missing_table_is_a_finding(self, lint_fixture):
        result = lint_fixture(
            db_module(
                """{
                    1: ("CREATE TABLE jobs (id INTEGER PRIMARY KEY)",),
                    2: ("ALTER TABLE ghosts ADD COLUMN state TEXT",),
                }""",
            ),
            select=("MEG013",),
        )
        assert rule_ids(result) == ["MEG013"]
        assert "ALTER TABLE ghosts" in messages(result)

    def test_duplicate_column_is_a_finding(self, lint_fixture):
        result = lint_fixture(
            db_module(
                """{
                    1: ("CREATE TABLE jobs (id INTEGER PRIMARY KEY, state TEXT)",),
                    2: ("ALTER TABLE jobs ADD COLUMN state TEXT",),
                }""",
            ),
            select=("MEG013",),
        )
        assert rule_ids(result) == ["MEG013"]
        assert "column already exists" in messages(result)

    def test_duplicate_create_table_is_a_finding(self, lint_fixture):
        result = lint_fixture(
            db_module(
                """{
                    1: ("CREATE TABLE jobs (id INTEGER PRIMARY KEY)",),
                    2: ("CREATE TABLE jobs (id INTEGER PRIMARY KEY)",),
                }""",
            ),
            select=("MEG013",),
        )
        assert rule_ids(result) == ["MEG013"]
        assert "table already exists" in messages(result)

    def test_index_on_unknown_column_is_a_finding(self, lint_fixture):
        result = lint_fixture(
            db_module(
                """{
                    1: ("CREATE TABLE jobs (id INTEGER PRIMARY KEY)",),
                    2: ("CREATE INDEX idx ON jobs (ghost_column)",),
                }""",
            ),
            select=("MEG013",),
        )
        assert "MEG013" in rule_ids(result)
        assert "unknown column jobs.ghost_column" in messages(result)

    def test_unrecognized_ddl_is_a_finding(self, lint_fixture):
        result = lint_fixture(
            db_module(
                """{
                    1: ("CREATE TABLE jobs (id INTEGER PRIMARY KEY)",),
                    2: ("CREATE TRIGGER t AFTER INSERT ON jobs BEGIN SELECT 1; END",),
                }""",
            ),
            select=("MEG013",),
        )
        assert rule_ids(result) == ["MEG013"]
        assert "unrecognized DDL statement" in messages(result)

    def test_statement_sqlite_rejects_is_a_finding(self, lint_fixture):
        # Parses statically (the regex is naive about column syntax) but
        # fails to execute — the cross-check catches the disagreement.
        result = lint_fixture(
            db_module(
                """{
                    1: ("CREATE TABLE jobs (id INTEGER PRIMARY KEY)",),
                    2: ("ALTER TABLE jobs ADD COLUMN state NOT_A_TYPE(((",),
                }""",
            ),
            select=("MEG013",),
        )
        assert rule_ids(result) == ["MEG013"]
        assert "fails to execute" in messages(result)

    def test_drop_statements_replay_symbolically(self, lint_fixture):
        result = lint_fixture(
            db_module(
                """{
                    1: (
                        "CREATE TABLE jobs (id INTEGER PRIMARY KEY, state TEXT)",
                        "CREATE INDEX idx_state ON jobs (state)",
                        "CREATE TABLE scratch (id INTEGER PRIMARY KEY)",
                    ),
                    2: ("DROP TABLE scratch",),
                }""",
            ),
            select=("MEG013",),
        )
        assert result.findings == []
