"""Unit tests for ``repro.lint.flow``: names, call graph, propagation."""

from __future__ import annotations

import ast
import json
import textwrap

from repro.lint import LintConfig
from repro.lint.flow import FlowAnalysis, module_name
from repro.lint.flow.names import ModuleNames, dotted_name
from repro.lint.project import load_project
from tests.test_lint.conftest import write_tree


def build_flow(tmp_path, files, **overrides) -> FlowAnalysis:
    write_tree(tmp_path, files)
    config = LintConfig(root=tmp_path, **overrides)
    return FlowAnalysis(load_project(config))


def names_for(source: str, module: str, is_package: bool = False) -> ModuleNames:
    return ModuleNames(
        ast.parse(textwrap.dedent(source)), module, is_package
    )


class TestDottedName:
    def test_attribute_chain(self):
        node = ast.parse("a.b.c", mode="eval").body
        assert dotted_name(node) == "a.b.c"

    def test_non_name_root_is_none(self):
        node = ast.parse("f().attr", mode="eval").body
        assert dotted_name(node) is None


class TestModuleName:
    def test_package_root_mapping(self):
        assert module_name("src/repro/gpu/x.py", "src/repro") == "repro.gpu.x"

    def test_init_names_the_package(self):
        assert module_name("src/repro/core/__init__.py", "src/repro") == (
            "repro.core"
        )


class TestModuleNames:
    def test_import_alias(self):
        names = names_for("import numpy.random as nr\n", "repro.core.x")
        assert names.resolve("nr.rand") == "numpy.random.rand"

    def test_from_import_alias(self):
        names = names_for("from time import time as _t\n", "repro.core.x")
        assert names.resolve("_t") == "time.time"

    def test_relative_import(self):
        names = names_for(
            "from .base import helper\n", "repro.lint.rules.determinism"
        )
        assert names.resolve("helper") == "repro.lint.rules.base.helper"

    def test_relative_import_from_package_init(self):
        names = names_for(
            "from .impl import helper\n", "repro.core", is_package=True
        )
        assert names.resolve("helper") == "repro.core.impl.helper"

    def test_module_level_assignment_alias(self):
        names = names_for(
            """\
            import time

            _clock = time.time
            """,
            "repro.core.x",
        )
        assert names.resolve("_clock") == "time.time"

    def test_local_def_binds_to_module(self):
        names = names_for("def f():\n    pass\n", "repro.core.x")
        assert names.resolve("f") == "repro.core.x.f"


class TestCallGraph:
    def test_intra_module_edge(self, tmp_path):
        flow = build_flow(tmp_path, {
            "src/repro/core/m.py": """\
                def leaf():
                    return 1

                def root():
                    return leaf()
            """,
        })
        assert "repro.core.m.leaf" in (
            flow.graph.functions["repro.core.m.root"].callees
        )

    def test_reexport_is_canonicalized(self, tmp_path):
        flow = build_flow(tmp_path, {
            "src/repro/core/__init__.py": (
                "from repro.core.impl import helper\n"
            ),
            "src/repro/core/impl.py": """\
                def helper():
                    return 1
            """,
            "src/repro/core/use.py": """\
                from repro.core import helper

                def run():
                    return helper()
            """,
        })
        assert "repro.core.impl.helper" in (
            flow.graph.functions["repro.core.use.run"].callees
        )

    def test_mutable_global_detection(self, tmp_path):
        flow = build_flow(tmp_path, {
            "src/repro/core/m.py": """\
                _CACHE = {}
                LIMIT = 3

                def put(key):
                    _CACHE[key] = True

                def read():
                    return LIMIT
            """,
        })
        module = flow.graph.modules["repro.core.m"]
        assert module.mutable_globals == {"_CACHE"}
        # `_CACHE[key] = ...` both loads the binding and mutates it;
        # reading the never-rebound constant is just a value.
        kinds = {
            e.kind for e in flow.graph.functions["repro.core.m.put"].effects
        }
        assert kinds == {"global-read", "global-write"}
        assert flow.graph.functions["repro.core.m.read"].effects == set()

    def test_pragma_attaches_on_def_line_and_line_above(self, tmp_path):
        flow = build_flow(tmp_path, {
            "src/repro/core/m.py": """\
                import os

                def on_line():  # megsim: ambient(env)
                    return os.getenv("A")

                # megsim: ambient(env)
                def above():
                    return os.getenv("B")
            """,
        })
        assert flow.graph.functions["repro.core.m.on_line"].pragma_kinds == (
            "env",
        )
        assert flow.graph.functions["repro.core.m.above"].pragma_kinds == (
            "env",
        )

    def test_pragma_text_in_docstring_is_ignored(self, tmp_path):
        flow = build_flow(tmp_path, {
            "src/repro/core/m.py": '''\
                def documented():
                    """Mentions # megsim: ambient(env) without meaning it."""
                    return 1
            ''',
        })
        assert flow.graph.modules["repro.core.m"].pragmas == []

    def test_common_method_names_do_not_fan_out(self, tmp_path):
        flow = build_flow(tmp_path, {
            "src/repro/core/m.py": """\
                class Store:
                    def get(self, key):
                        import os
                        return os.getpid()

                def lookup(mapping):
                    return mapping.get("x")
            """,
        })
        # mapping.get() is assumed to be dict.get, not Store.get — the
        # process effect must not leak into lookup's cone.
        assert flow.ambient["repro.core.m.lookup"] == frozenset()

    def test_self_attribute_type_resolves_method(self, tmp_path):
        flow = build_flow(tmp_path, {
            "src/repro/core/m.py": """\
                class Tier:
                    def persist(self, key):
                        import os
                        return os.getpid()

                class Front:
                    def __init__(self, enabled):
                        self.tier = Tier() if enabled else None

                    def save(self, key):
                        return self.tier.persist(key)
            """,
        })
        assert "repro.core.m.Tier.persist" in (
            flow.graph.functions["repro.core.m.Front.save"].callees
        )


class TestPropagation:
    FILES = {
        "src/repro/core/chain.py": """\
            import os

            def leaf():
                return os.getenv("MEGSIM_X")

            def middle():
                return leaf()

            def root():
                return middle()
        """,
    }

    def test_effect_propagates_to_fixed_point(self, tmp_path):
        flow = build_flow(tmp_path, self.FILES)
        item = ("env", "os.getenv", "repro.core.chain.leaf")
        for fn in ("leaf", "middle", "root"):
            assert flow.ambient[f"repro.core.chain.{fn}"] == {item}

    def test_witness_chain_names_every_hop(self, tmp_path):
        flow = build_flow(tmp_path, self.FILES)
        item = ("env", "os.getenv", "repro.core.chain.leaf")
        chain = flow.witness("repro.core.chain.root", item)
        assert chain == [
            "repro.core.chain.root",
            "repro.core.chain.middle",
            "repro.core.chain.leaf",
        ]
        assert flow.render_chain(chain) == (
            "repro.core.chain:root -> repro.core.chain:middle "
            "-> repro.core.chain:leaf"
        )

    def test_declaration_absorbs_but_raw_keeps(self, tmp_path):
        flow = build_flow(tmp_path, {
            "src/repro/core/m.py": """\
                import os

                def leaf():  # megsim: ambient(env)
                    return os.getenv("MEGSIM_X")

                def root():
                    return leaf()
            """,
        })
        root = "repro.core.m.root"
        assert flow.ambient[root] == frozenset()
        assert {kind for kind, _, _ in flow.raw[root]} == {"env"}
        digest = flow.digest(root)
        assert digest["ambient"] == []
        assert digest["absorbed"] == ["env:os.getenv"]

    def test_call_cycle_converges(self, tmp_path):
        flow = build_flow(tmp_path, {
            "src/repro/core/m.py": """\
                import os

                def ping(n):
                    return pong(n - 1) if n else os.getenv("X")

                def pong(n):
                    return ping(n)
            """,
        })
        for fn in ("ping", "pong"):
            assert {k for k, _, _ in flow.ambient[f"repro.core.m.{fn}"]} == {
                "env"
            }

    def test_blanket_paths_absorb(self, tmp_path):
        flow = build_flow(tmp_path, {
            "src/repro/obs/clock.py": """\
                import time

                def stamp():
                    return time.time()
            """,
            "src/repro/core/use.py": """\
                from repro.obs.clock import stamp

                def run():
                    return stamp()
            """,
        })
        # obs is ambient-paths: the wall-clock read is declared wholesale.
        assert flow.ambient["repro.core.use.run"] == frozenset()
        assert flow.digest("repro.core.use.run")["absorbed"] == [
            "wall-clock:time.time"
        ]

    def test_summary_is_json_stable(self, tmp_path):
        first = build_flow(tmp_path, self.FILES)
        second = FlowAnalysis(first.project)
        root = "repro.core.chain.root"
        assert json.dumps(first.summary(root)) == json.dumps(
            second.summary(root)
        )
        summary = first.summary(root)
        assert summary["ambient"][0]["via"].startswith(
            "repro.core.chain:root -> "
        )

    def test_resolve_spec_accepts_colon_and_reexports(self, tmp_path):
        flow = build_flow(tmp_path, {
            "src/repro/core/__init__.py": (
                "from repro.core.impl import helper\n"
            ),
            "src/repro/core/impl.py": """\
                def helper():
                    return 1
            """,
        })
        assert flow.resolve_spec("repro.core.impl:helper") == (
            "repro.core.impl.helper"
        )
        assert flow.resolve_spec("repro.core:helper") == (
            "repro.core.impl.helper"
        )
        assert flow.resolve_spec("repro.core:nope") is None

    def test_cone_lists_reachable_functions(self, tmp_path):
        flow = build_flow(tmp_path, self.FILES)
        assert flow.cone("repro.core.chain.root") == [
            "repro.core.chain.leaf",
            "repro.core.chain.middle",
            "repro.core.chain.root",
        ]
