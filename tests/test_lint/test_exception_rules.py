"""MEG004 (bare except) and MEG005 (foreign raise) fixtures."""

from __future__ import annotations

from tests.test_lint.conftest import messages, rule_ids


class TestBareExcept:
    def test_bare_except_flagged(self, lint_fixture):
        result = lint_fixture(
            {"src/repro/core/x.py": """\
                def swallow():
                    try:
                        return 1 / 0
                    except:
                        return None
            """},
            select=("MEG004",),
        )
        assert rule_ids(result) == ["MEG004"]

    def test_typed_except_passes(self, lint_fixture):
        result = lint_fixture(
            {"src/repro/core/x.py": """\
                def guard():
                    try:
                        return 1 / 0
                    except ZeroDivisionError:
                        return None
            """},
            select=("MEG004",),
        )
        assert result.findings == []


class TestForeignRaise:
    def test_builtin_raise_flagged(self, lint_fixture):
        result = lint_fixture(
            {"src/repro/core/x.py": """\
                def check(k):
                    if k < 1:
                        raise ValueError("k must be positive")
            """},
            select=("MEG005",),
        )
        assert rule_ids(result) == ["MEG005"]
        assert "ReproError" in messages(result)

    def test_repro_error_passes(self, lint_fixture):
        result = lint_fixture(
            {"src/repro/core/x.py": """\
                from repro.errors import ClusteringError

                def check(k):
                    if k < 1:
                        raise ClusteringError("k must be positive")
            """},
            select=("MEG005",),
        )
        assert result.findings == []

    def test_not_implemented_error_allowed(self, lint_fixture):
        result = lint_fixture(
            {"src/repro/gpu/x.py": """\
                class Base:
                    def run(self):
                        raise NotImplementedError
            """},
            select=("MEG005",),
        )
        assert result.findings == []

    def test_bare_reraise_passes(self, lint_fixture):
        result = lint_fixture(
            {"src/repro/core/x.py": """\
                def retry():
                    try:
                        return 1
                    except Exception:
                        raise
            """},
            select=("MEG005",),
        )
        assert result.findings == []

    def test_allowlist_is_configurable(self, lint_fixture):
        result = lint_fixture(
            {"src/repro/core/x.py": """\
                def stop():
                    raise StopIteration
            """},
            select=("MEG005",),
            raise_allowed=("NotImplementedError", "StopIteration"),
        )
        assert result.findings == []
