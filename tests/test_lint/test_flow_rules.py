"""MEG010 (cache purity), MEG011 (declared ambient), MEG012 (worker
boundary) fixtures: a passing and at least one failing tree for each.
"""

from __future__ import annotations

from tests.test_lint.conftest import messages, rule_ids

#: The default worker entrypoint module, reused by the MEG012 fixtures.
POOL = {
    "src/repro/parallel/pool.py": """\
        def parallel_map(fn, items):
            return [fn(item) for item in items]
    """,
}


class TestCachePurity:
    STAGES = "src/repro/pipeline/stages.py"

    def test_pure_stage_passes(self, lint_fixture):
        result = lint_fixture(
            {self.STAGES: """\
                def _compute_trace(request, artifacts):
                    return request.scale * 2

                STAGES = (
                    Stage(name="trace", compute=_compute_trace),
                )
            """},
            select=("MEG010",),
        )
        assert result.findings == []

    def test_ambient_env_in_cone_fails_with_chain(self, lint_fixture):
        result = lint_fixture(
            {
                self.STAGES: """\
                    from repro.pipeline.helpers import scale_of

                    def _compute_trace(request, artifacts):
                        return scale_of(request)

                    STAGES = (
                        Stage(name="trace", compute=_compute_trace),
                    )
                """,
                "src/repro/pipeline/helpers.py": """\
                    import os

                    def scale_of(request):
                        return float(os.getenv("MEGSIM_SCALE"))
                """,
            },
            select=("MEG010",),
        )
        assert rule_ids(result) == ["MEG010"]
        text = messages(result)
        assert "stage 'trace'" in text
        assert "ambient env (os.getenv)" in text
        # The witness chain names the route, not just the origin.
        assert (
            "repro.pipeline.stages:_compute_trace -> "
            "repro.pipeline.helpers:scale_of"
        ) in text

    def test_declared_ambient_is_absorbed(self, lint_fixture):
        result = lint_fixture(
            {self.STAGES: """\
                import os

                def _env():  # megsim: ambient(env)
                    return os.getenv("MEGSIM_SCALE")

                def _compute_trace(request, artifacts):
                    return _env()

                STAGES = (
                    Stage(name="trace", compute=_compute_trace),
                )
            """},
            select=("MEG010",),
        )
        assert result.findings == []

    def test_non_module_level_compute_fails(self, lint_fixture):
        result = lint_fixture(
            {self.STAGES: """\
                class Holder:
                    def _compute_trace(self, request, artifacts):
                        return 1

                STAGES = (
                    Stage(name="trace", compute=_missing),
                )
            """},
            select=("MEG010",),
        )
        assert rule_ids(result) == ["MEG010"]
        assert "not a module-level function" in messages(result)


class TestDeclaredAmbient:
    def test_matching_pragma_passes(self, lint_fixture):
        result = lint_fixture(
            {"src/repro/core/m.py": """\
                import os

                def read_env():  # megsim: ambient(env)
                    return os.getenv("X")
            """},
            select=("MEG011",),
        )
        assert result.findings == []

    def test_unknown_kind_is_a_finding(self, lint_fixture):
        result = lint_fixture(
            {"src/repro/core/m.py": """\
                import os

                def read_env():  # megsim: ambient(enviroment)
                    return os.getenv("X")
            """},
            select=("MEG011",),
        )
        assert "unknown effect kind 'enviroment'" in messages(result)

    def test_orphan_pragma_is_a_finding(self, lint_fixture):
        result = lint_fixture(
            {"src/repro/core/m.py": """\
                # megsim: ambient(env)

                VALUE = 1
            """},
            select=("MEG011",),
        )
        assert rule_ids(result) == ["MEG011"]
        assert "attaches to no function" in messages(result)

    def test_stale_pragma_is_a_finding(self, lint_fixture):
        result = lint_fixture(
            {"src/repro/core/m.py": """\
                def pure():  # megsim: ambient(env)
                    return 1
            """},
            select=("MEG011",),
        )
        assert rule_ids(result) == ["MEG011"]
        assert "stale ambient pragma" in messages(result)
        assert "no env effect is reachable" in messages(result)

    def test_allowlist_entry_matching_nothing_is_a_finding(
        self, lint_fixture
    ):
        result = lint_fixture(
            {"src/repro/core/m.py": "VALUE = 1\n"},
            select=("MEG011",),
            ambient={"repro.core.m:gone": ("env",)},
        )
        assert rule_ids(result) == ["MEG011"]
        assert "matches no function" in messages(result)

    def test_stale_allowlist_entry_is_a_finding(self, lint_fixture):
        result = lint_fixture(
            {"src/repro/core/m.py": """\
                def pure():
                    return 1
            """},
            select=("MEG011",),
            ambient={"repro.core.m:pure": ("env",)},
        )
        assert rule_ids(result) == ["MEG011"]
        assert "stale ambient allowlist entry" in messages(result)

    def test_live_allowlist_entry_passes(self, lint_fixture):
        result = lint_fixture(
            {"src/repro/core/m.py": """\
                import os

                def read_env():
                    return os.getenv("X")
            """},
            select=("MEG011",),
            ambient={"repro.core.m:read_env": ("env",)},
        )
        assert result.findings == []


class TestWorkerBoundary:
    def test_clean_toplevel_worker_passes(self, lint_fixture):
        result = lint_fixture(
            {
                **POOL,
                "src/repro/analysis/run.py": """\
                    from repro.parallel.pool import parallel_map

                    def worker(item):
                        return item * 2

                    def run(items):
                        return parallel_map(worker, items)
                """,
            },
            select=("MEG012",),
        )
        assert result.findings == []

    def test_lambda_is_a_finding(self, lint_fixture):
        result = lint_fixture(
            {
                **POOL,
                "src/repro/analysis/run.py": """\
                    from repro.parallel.pool import parallel_map

                    def run(items):
                        return parallel_map(lambda item: item * 2, items)
                """,
            },
            select=("MEG012",),
        )
        assert rule_ids(result) == ["MEG012"]
        assert "lambda shipped to" in messages(result)

    def test_nested_function_is_a_finding(self, lint_fixture):
        result = lint_fixture(
            {
                **POOL,
                "src/repro/analysis/run.py": """\
                    from repro.parallel.pool import parallel_map

                    def run(items):
                        def worker(item):
                            return item * 2
                        return parallel_map(worker, items)
                """,
            },
            select=("MEG012",),
        )
        assert rule_ids(result) == ["MEG012"]
        assert "is a nested, not a top-level function" in messages(result)

    def test_unresolvable_callable_is_a_finding(self, lint_fixture):
        result = lint_fixture(
            {
                **POOL,
                "src/repro/analysis/run.py": """\
                    from repro.parallel.pool import parallel_map

                    def run(fns, items):
                        return parallel_map(fns[0], items)
                """,
            },
            select=("MEG012",),
        )
        assert rule_ids(result) == ["MEG012"]
        assert "cannot be statically resolved" in messages(result)

    def test_ambient_worker_cone_is_a_finding(self, lint_fixture):
        result = lint_fixture(
            {
                **POOL,
                "src/repro/analysis/run.py": """\
                    from repro.parallel.pool import parallel_map

                    _SEEN = {}

                    def worker(item):
                        _SEEN[item] = True
                        return item

                    def run(items):
                        return parallel_map(worker, items)
                """,
            },
            select=("MEG012",),
        )
        assert "MEG012" in rule_ids(result)
        text = messages(result)
        assert "worker 'repro.analysis.run:worker'" in text
        assert "repro.analysis.run._SEEN" in text
        assert "per-process state" in text

    def test_partial_is_unwrapped_to_its_target(self, lint_fixture):
        result = lint_fixture(
            {
                **POOL,
                "src/repro/analysis/run.py": """\
                    import functools

                    from repro.parallel.pool import parallel_map

                    def worker(offset, item):
                        return item + offset

                    def run(items):
                        return parallel_map(
                            functools.partial(worker, 3), items
                        )
                """,
            },
            select=("MEG012",),
        )
        assert result.findings == []
