"""Engine behaviour: rule selection, parse errors, config, exit codes —
plus the acceptance criterion that the repository at HEAD lints clean.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError
from repro.lint import ALL_RULES, Rule, load_config, run_lint, select_rules
from repro.lint.engine import PARSE_RULE_ID, main
from tests.test_lint.conftest import REPO_ROOT, rule_ids, write_tree

EXPECTED_RULE_IDS = [f"MEG00{n}" for n in range(1, 10)] + [
    f"MEG01{n}" for n in range(4)
]


class TestRepositoryIsClean:
    def test_head_lints_clean(self):
        """`megsim lint` exits 0 on the repo at HEAD (ISSUE 2 acceptance)."""
        result = run_lint(load_config(REPO_ROOT))
        assert result.findings == [], "\n".join(
            finding.render() for finding in result.findings
        )

    def test_no_baseline_suppressions_in_use(self):
        # The PR policy was fix-not-baseline; nothing should be hidden.
        result = run_lint(load_config(REPO_ROOT))
        assert result.baselined == []
        assert result.stale_keys == []


class TestRegistry:
    def test_every_rule_shipped_and_ordered(self):
        assert [rule.rule_id for rule in ALL_RULES] == EXPECTED_RULE_IDS

    def test_rules_satisfy_the_protocol(self):
        for rule in ALL_RULES:
            assert isinstance(rule, Rule)
            assert rule.name and rule.summary

    def test_select_unknown_id_raises(self):
        with pytest.raises(ConfigError):
            select_rules(select=("MEG999",))

    def test_select_and_disable_compose(self):
        rules = select_rules(select=("MEG001", "MEG002"), disable=("MEG002",))
        assert [rule.rule_id for rule in rules] == ["MEG001"]


class TestEngineMechanics:
    def test_syntax_error_becomes_meg000(self, lint_fixture):
        result = lint_fixture(
            {"src/repro/core/broken.py": "def broken(:\n"},
            select=("MEG006",),
        )
        assert rule_ids(result) == [PARSE_RULE_ID]

    def test_findings_are_sorted(self, lint_fixture):
        result = lint_fixture(
            {
                "src/repro/core/b.py": "def f(x=[]):\n    return x\n",
                "src/repro/core/a.py": "def g(y={}):\n    return y\n",
            },
            select=("MEG006",),
        )
        paths = [finding.path for finding in result.findings]
        assert paths == sorted(paths)

    def test_config_disable_applies(self, lint_fixture):
        result = lint_fixture(
            {"src/repro/core/x.py": "def f(x=[]):\n    return x\n"},
            select=("MEG006",),
            disable=("MEG006",),
        )
        assert result.findings == []


class TestConfigLoading:
    def test_defaults_without_pyproject(self, tmp_path):
        config = load_config(tmp_path)
        assert config.paths == ("src/repro",)
        assert config.layers["errors"] == 0

    def test_pyproject_overrides(self, tmp_path):
        write_tree(tmp_path, {
            "pyproject.toml": """\
                [tool.megsim-lint]
                paths = ["lib"]
                disable = ["MEG006"]

                [tool.megsim-lint.layers]
                base = 0
            """,
        })
        config = load_config(tmp_path)
        assert config.paths == ("lib",)
        assert config.disable == ("MEG006",)
        assert config.layers == {"base": 0}

    def test_unknown_key_rejected(self, tmp_path):
        write_tree(tmp_path, {
            "pyproject.toml": "[tool.megsim-lint]\ntypo-key = true\n",
        })
        with pytest.raises(ConfigError):
            load_config(tmp_path)


class TestCommandLine:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        write_tree(tmp_path, {"src/repro/core/x.py": "value = 1\n"})
        code = main(["--root", str(tmp_path), "--select", "MEG006"])
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_violation_exits_one(self, tmp_path, capsys):
        write_tree(
            tmp_path,
            {"src/repro/core/x.py": "def f(x=[]):\n    return x\n"},
        )
        code = main(["--root", str(tmp_path), "--select", "MEG006"])
        assert code == 1
        assert "MEG006" in capsys.readouterr().out

    def test_config_error_exits_two(self, tmp_path, capsys):
        write_tree(tmp_path, {
            "pyproject.toml": "[tool.megsim-lint]\ntypo-key = 1\n",
        })
        assert main(["--root", str(tmp_path)]) == 2

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in EXPECTED_RULE_IDS:
            assert rule_id in out

    def test_repo_via_module_main(self, capsys):
        assert main(["--root", str(REPO_ROOT)]) == 0

    def test_stale_baseline_key_fails_even_without_strict(
        self, tmp_path, capsys
    ):
        # A suppression matching nothing must fail the gate outright —
        # the baseline only ever shrinks.
        write_tree(tmp_path, {
            "src/repro/core/x.py": "value = 1\n",
            "lint-baseline.txt": "MEG006:src/repro/core/gone.py:old finding\n",
        })
        code = main(["--root", str(tmp_path), "--select", "MEG006"])
        assert code == 1
        assert "stale baseline entry" in capsys.readouterr().out


class TestEffectsFlag:
    def test_dumps_deterministic_summary_json(self, capsys):
        spec = "repro.pipeline.stages:_compute_plan"
        assert main(["--root", str(REPO_ROOT), "--effects", spec]) == 0
        first = capsys.readouterr().out
        document = json.loads(first)
        assert document["function"] == "repro.pipeline.stages:_compute_plan"
        assert document["ambient"] == []
        assert main(["--root", str(REPO_ROOT), "--effects", spec]) == 0
        assert capsys.readouterr().out == first

    def test_unknown_spec_exits_two(self, capsys):
        code = main(
            ["--root", str(REPO_ROOT), "--effects", "repro.nope:missing"]
        )
        assert code == 2
        assert "no function matches" in capsys.readouterr().err
