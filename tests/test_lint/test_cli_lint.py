"""`megsim lint` wired through the main CLI (`repro.cli`)."""

from __future__ import annotations

import json

from repro.cli import main
from tests.test_lint.conftest import REPO_ROOT, write_tree


class TestMegsimLint:
    def test_repo_is_clean_via_cli(self, capsys):
        assert main(["lint", "--root", str(REPO_ROOT)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_json_format_through_cli(self, capsys):
        assert main(
            ["lint", "--root", str(REPO_ROOT), "--format", "json"]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["findings"] == []

    def test_select_passthrough(self, tmp_path, capsys):
        write_tree(
            tmp_path,
            {"src/repro/core/x.py": "def f(x=[]):\n    return x\n"},
        )
        assert main(
            ["lint", "--root", str(tmp_path), "--select", "MEG006"]
        ) == 1
        assert "MEG006" in capsys.readouterr().out

    def test_list_rules_through_cli(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        assert "MEG001" in capsys.readouterr().out

    def test_effects_passthrough(self, capsys):
        assert main([
            "lint", "--root", str(REPO_ROOT),
            "--effects", "repro.pipeline.stages:_compute_trace",
        ]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["function"] == (
            "repro.pipeline.stages:_compute_trace"
        )
