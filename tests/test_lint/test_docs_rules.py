"""MEG007 (doc coverage + fences) and MEG008 (CLI/doc sync) fixtures."""

from __future__ import annotations

from tests.test_lint.conftest import messages, rule_ids

#: Minimal public module for coverage fixtures.
PKG_INIT = """\
    frobnicate = lambda: None
    calibrate = lambda: None

    __all__ = ["frobnicate", "calibrate"]
"""


class TestDocCoverage:
    def _run(self, lint_fixture, api_text: str, extra=None):
        files = {
            "src/repro/__init__.py": PKG_INIT,
            "docs/api.md": api_text,
        }
        files.update(extra or {})
        return lint_fixture(
            files,
            select=("MEG007",),
            public_modules={"repro": "src/repro/__init__.py"},
        )

    def test_undocumented_export_flagged(self, lint_fixture):
        result = self._run(lint_fixture, "# API\n\nonly `frobnicate` here\n")
        assert rule_ids(result) == ["MEG007"]
        assert "repro.calibrate" in messages(result)

    def test_documented_exports_pass(self, lint_fixture):
        result = self._run(
            lint_fixture, "# API\n\n`frobnicate` and `calibrate`\n"
        )
        assert result.findings == []

    def test_broken_python_fence_flagged(self, lint_fixture):
        result = self._run(
            lint_fixture,
            "# API\n\n`frobnicate` and `calibrate`\n",
            extra={
                "docs/guide.md": """\
                    # Guide

                    ```python
                    def broken(:
                    ```
                """
            },
        )
        assert rule_ids(result) == ["MEG007"]
        assert "does not parse" in messages(result)

    def test_valid_fence_passes(self, lint_fixture):
        result = self._run(
            lint_fixture,
            "# API\n\n`frobnicate` and `calibrate`\n",
            extra={
                "docs/guide.md": """\
                    ```python
                    x = 1
                    ```
                """
            },
        )
        assert result.findings == []

    def test_missing_api_doc_flagged(self, lint_fixture):
        result = lint_fixture(
            {"src/repro/__init__.py": PKG_INIT},
            select=("MEG007",),
            public_modules={"repro": "src/repro/__init__.py"},
        )
        assert rule_ids(result) == ["MEG007"]
        assert "missing or empty" in messages(result)


class TestCliDocSync:
    CLI = """\
        import argparse

        def build_parser():
            parser = argparse.ArgumentParser()
            commands = parser.add_subparsers()
            run = commands.add_parser("frobnicate")
            run.add_argument("--knob", type=int)
            return parser
    """

    def _run(self, lint_fixture, api_text: str):
        return lint_fixture(
            {
                "src/repro/cli.py": self.CLI,
                "src/repro/__init__.py": "__all__ = []\n",
                "docs/api.md": api_text,
            },
            select=("MEG008",),
            public_modules={},
        )

    def test_undocumented_subcommand_and_flag_flagged(self, lint_fixture):
        result = self._run(lint_fixture, "# API\n\nnothing\n")
        assert rule_ids(result) == ["MEG008", "MEG008"]
        assert "'frobnicate'" in messages(result)
        assert "'--knob'" in messages(result)

    def test_documented_surface_passes(self, lint_fixture):
        result = self._run(
            lint_fixture, "# API\n\n`frobnicate` takes `--knob`\n"
        )
        assert result.findings == []

    def test_positional_arguments_are_not_required_in_docs(self, lint_fixture):
        result = lint_fixture(
            {
                "src/repro/cli.py": """\
                    import argparse

                    def build_parser():
                        parser = argparse.ArgumentParser()
                        parser.add_argument("benchmark")
                        return parser
                """,
                "docs/api.md": "# API\n",
            },
            select=("MEG008",),
            public_modules={},
        )
        assert result.findings == []
