"""MEG006: mutable default arguments."""

from __future__ import annotations

from tests.test_lint.conftest import rule_ids


class TestMutableDefaults:
    def test_literal_list_default_flagged(self, lint_fixture):
        result = lint_fixture(
            {"src/repro/core/x.py": """\
                def collect(into=[]):
                    return into
            """},
            select=("MEG006",),
        )
        assert rule_ids(result) == ["MEG006"]

    def test_dict_call_default_flagged(self, lint_fixture):
        result = lint_fixture(
            {"src/repro/core/x.py": """\
                def index(cache=dict()):
                    return cache
            """},
            select=("MEG006",),
        )
        assert rule_ids(result) == ["MEG006"]

    def test_keyword_only_default_flagged(self, lint_fixture):
        result = lint_fixture(
            {"src/repro/core/x.py": """\
                def tally(*, seen={}):
                    return seen
            """},
            select=("MEG006",),
        )
        assert rule_ids(result) == ["MEG006"]

    def test_immutable_defaults_pass(self, lint_fixture):
        result = lint_fixture(
            {"src/repro/core/x.py": """\
                def fine(a=None, b=(), c="x", d=0, e=frozenset()):
                    return a, b, c, d, e
            """},
            select=("MEG006",),
        )
        assert result.findings == []
