"""MEG003: layering back-edges, cycles, unknown components."""

from __future__ import annotations

from tests.test_lint.conftest import messages, rule_ids


class TestBackEdges:
    def test_gpu_importing_analysis_is_a_back_edge(self, lint_fixture):
        result = lint_fixture(
            {"src/repro/gpu/x.py": """\
                from repro.analysis.runner import evaluate_benchmark
            """},
            select=("MEG003",),
        )
        assert rule_ids(result) == ["MEG003"]
        assert "back-edge" in messages(result)

    def test_lazy_function_body_import_counts(self, lint_fixture):
        result = lint_fixture(
            {"src/repro/scene/x.py": """\
                def shortcut():
                    from repro.cli import main
                    return main
            """},
            select=("MEG003",),
        )
        assert rule_ids(result) == ["MEG003"]

    def test_downward_imports_pass(self, lint_fixture):
        result = lint_fixture(
            {
                "src/repro/core/x.py": """\
                    from repro.errors import ClusteringError
                    from repro.gpu.stats import FrameStats
                    from repro.obs import span
                """,
                "src/repro/gpu/stats.py": "FrameStats = object\n",
            },
            select=("MEG003",),
        )
        assert result.findings == []

    def test_same_component_imports_pass(self, lint_fixture):
        result = lint_fixture(
            {"src/repro/core/x.py": """\
                from repro.core.kmeans import kmeans
            """},
            select=("MEG003",),
        )
        assert result.findings == []


class TestCycles:
    def test_same_level_cycle_reported(self, lint_fixture):
        # workloads and gpu share a level, so neither import is a
        # back-edge — only cycle detection can catch the pair.
        result = lint_fixture(
            {
                "src/repro/workloads/a.py": "import repro.gpu.b\n",
                "src/repro/gpu/b.py": "import repro.workloads.a\n",
            },
            select=("MEG003",),
        )
        assert "import cycle" in messages(result)
        assert any("gpu" in f.message and "workloads" in f.message
                   for f in result.findings)


class TestUnknownComponents:
    def test_unmapped_component_flagged(self, lint_fixture):
        result = lint_fixture(
            {"src/repro/mystery/x.py": "VALUE = 1\n"},
            select=("MEG003",),
        )
        assert rule_ids(result) == ["MEG003"]
        assert "no level" in messages(result)

    def test_custom_layer_map_is_honoured(self, lint_fixture):
        result = lint_fixture(
            {"src/repro/mystery/x.py": "from repro.errors import ReproError\n"},
            select=("MEG003",),
            layers={"errors": 0, "mystery": 1},
        )
        assert result.findings == []
