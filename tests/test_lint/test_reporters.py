"""Reporter contracts: machine-stable JSON, schema round-trip, text."""

from __future__ import annotations

import hashlib
import json

from repro.lint import (
    Finding,
    Severity,
    load_config,
    render_json,
    render_text,
    run_lint,
)
from repro.lint.reporters import JSON_SCHEMA_VERSION
from tests.test_lint.conftest import REPO_ROOT

SAMPLE = [
    Finding(path="src/b.py", line=9, rule_id="MEG002", message="later file"),
    Finding(path="src/a.py", line=3, rule_id="MEG006", message="earlier file",
            severity=Severity.WARNING),
    Finding(path="src/a.py", line=1, rule_id="MEG001", message="first"),
]


class TestJsonStability:
    def test_round_trip(self):
        document = json.loads(render_json(SAMPLE))
        assert document["schema_version"] == JSON_SCHEMA_VERSION
        assert [f["path"] for f in document["findings"]] == [
            "src/a.py", "src/a.py", "src/b.py"
        ]
        assert document["findings"][0] == {
            "path": "src/a.py",
            "line": 1,
            "rule": "MEG001",
            "severity": "error",
            "message": "first",
        }
        expected_digest = hashlib.sha256(
            "\n".join(
                sorted(f.baseline_key for f in SAMPLE)
            ).encode("utf-8")
        ).hexdigest()
        assert document["summary"] == {
            "errors": 2,
            "warnings": 1,
            "baselined": 0,
            "stale_baseline_keys": [],
            "rule_counts": {"MEG001": 1, "MEG002": 1, "MEG006": 1},
            "findings_sha256": expected_digest,
        }

    def test_output_is_deterministic_across_input_order(self):
        assert render_json(SAMPLE) == render_json(list(reversed(SAMPLE)))

    def test_repo_lint_json_is_byte_stable(self):
        """Two runs over the same tree -> identical bytes (CI diffing)."""
        config = load_config(REPO_ROOT)

        def report() -> str:
            result = run_lint(config)
            return render_json(
                result.findings, len(result.baselined), result.stale_keys
            )

        first, second = report(), report()
        assert first == second
        document = json.loads(first)
        assert document["findings"] == []
        # Paths in any report are root-relative POSIX — no backslashes,
        # no absolute paths — which is what makes reports portable.
        assert document["schema_version"] == JSON_SCHEMA_VERSION

    def test_ends_with_single_newline(self):
        assert render_json([]).endswith("}\n")


class TestTextReporter:
    def test_clean_message(self):
        assert render_text([]) == "megsim lint: clean"

    def test_findings_render_with_location(self):
        text = render_text(SAMPLE)
        assert "src/a.py:1: MEG001 [error] first" in text
        assert "2 error(s), 1 warning(s)" in text

    def test_baselined_and_stale_are_visible(self):
        text = render_text([], baselined=2, stale=["MEG001:gone.py:x"])
        assert "2 baselined" in text
        assert "stale baseline entry" in text
