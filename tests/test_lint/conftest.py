"""Shared fixtures: build a throwaway project tree and lint it."""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.lint import LintConfig, LintResult, run_lint

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def write_tree(root: Path, files: dict[str, str]) -> None:
    """Materialize ``relpath -> source`` under ``root`` (dedented)."""
    for relpath, text in files.items():
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text))


@pytest.fixture
def lint_fixture(tmp_path):
    """Lint a synthetic project: ``lint_fixture(files, select=..., ...)``.

    ``files`` maps root-relative paths to (dedented) file contents;
    remaining keyword arguments override :class:`LintConfig` fields.
    Returns the :class:`LintResult`.
    """

    def run(
        files: dict[str, str],
        select: tuple[str, ...] = (),
        **overrides,
    ) -> LintResult:
        write_tree(tmp_path, files)
        config = LintConfig(root=tmp_path, **overrides)
        return run_lint(config, select=select)

    run.root = tmp_path
    return run


def rule_ids(result: LintResult) -> list[str]:
    return [finding.rule_id for finding in result.findings]


def messages(result: LintResult) -> str:
    return "\n".join(finding.render() for finding in result.findings)
