"""Baseline suppression: grandfather, match, stale detection."""

from __future__ import annotations

from repro.lint import LintConfig, load_baseline, run_lint, write_baseline
from repro.lint.engine import main
from tests.test_lint.conftest import write_tree

VIOLATION = {"src/repro/core/x.py": "def f(x=[]):\n    return x\n"}


def _config(root) -> LintConfig:
    return LintConfig(root=root)


class TestBaselineRoundTrip:
    def test_grandfathered_finding_is_suppressed(self, tmp_path):
        write_tree(tmp_path, VIOLATION)
        config = _config(tmp_path)

        first = run_lint(config, select=("MEG006",))
        assert len(first.findings) == 1

        write_baseline(config.baseline_path, first.findings)
        second = run_lint(config, select=("MEG006",))
        assert second.findings == []
        assert len(second.baselined) == 1
        assert second.exit_code() == 0

    def test_baseline_survives_line_shifts(self, tmp_path):
        write_tree(tmp_path, VIOLATION)
        config = _config(tmp_path)
        write_baseline(
            config.baseline_path, run_lint(config, select=("MEG006",)).findings
        )
        # Prepend lines: the finding moves but its key does not.
        target = tmp_path / "src/repro/core/x.py"
        target.write_text("# comment\n# comment\n" + target.read_text())
        result = run_lint(config, select=("MEG006",))
        assert result.findings == []
        assert len(result.baselined) == 1

    def test_stale_entries_are_reported(self, tmp_path):
        write_tree(tmp_path, VIOLATION)
        config = _config(tmp_path)
        write_baseline(
            config.baseline_path, run_lint(config, select=("MEG006",)).findings
        )
        (tmp_path / "src/repro/core/x.py").write_text(
            "def f(x=None):\n    return x\n"
        )
        result = run_lint(config, select=("MEG006",))
        assert result.findings == []
        assert result.baselined == []
        assert len(result.stale_keys) == 1
        assert result.stale_keys[0].startswith("MEG006:src/repro/core/x.py:")

    def test_comments_and_blanks_ignored(self, tmp_path):
        path = tmp_path / "baseline.txt"
        path.write_text(
            "# header comment\n"
            "\n"
            "MEG006:src/x.py:some message  # justified because reasons\n"
        )
        assert load_baseline(path) == {"MEG006:src/x.py:some message"}

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.txt") == set()


class TestCommandLineFlags:
    def test_write_baseline_then_clean(self, tmp_path, capsys):
        write_tree(tmp_path, VIOLATION)
        assert main(
            ["--root", str(tmp_path), "--select", "MEG006",
             "--write-baseline"]
        ) == 0
        capsys.readouterr()
        assert main(["--root", str(tmp_path), "--select", "MEG006"]) == 0
        assert "baselined" in capsys.readouterr().out

    def test_no_baseline_reveals_everything(self, tmp_path, capsys):
        write_tree(tmp_path, VIOLATION)
        main(["--root", str(tmp_path), "--select", "MEG006",
              "--write-baseline"])
        capsys.readouterr()
        assert main(
            ["--root", str(tmp_path), "--select", "MEG006", "--no-baseline"]
        ) == 1
