"""Golden effect summaries of the repo at HEAD, plus the MEG010
acceptance check: injecting an ambient read into a stage's cone is
caught and reported with its call-site chain.
"""

from __future__ import annotations

import json
import shutil

import pytest

from repro.lint import load_config, run_lint
from repro.lint.flow import get_flow
from repro.lint.project import load_project
from tests.test_lint.conftest import REPO_ROOT

FLOW_RULES = ("MEG010", "MEG011", "MEG012", "MEG013")

#: The obs instrumentation every simulating stage runs under; declared
#: wholesale by `ambient-paths`, hence *absorbed*, never ambient.
OBS_ABSORBED = [
    "global-read:repro.obs.trace._active",
    "wall-clock:time.perf_counter",
    "wall-clock:time.time",
]

#: Pinned `FlowAnalysis.digest()` of every stage compute at HEAD.  The
#: digests are line-number-free, so only a real change to a cone's
#: effects (or to the declarations that absorb them) may edit these.
GOLDEN_DIGESTS = {
    "repro.pipeline.stages._compute_trace": {
        "function": "repro.pipeline.stages:_compute_trace",
        "declared": [],
        "direct": [],
        "ambient": [],
        # The capture read in `load_workload_file` is declared ambient:
        # sound because a replay ref's fingerprint IS the capture's
        # content hash, so the file's bytes are in the stage address.
        "absorbed": ["filesystem:.read_text"] + OBS_ABSORBED,
    },
    "repro.pipeline.stages._compute_profile": {
        "function": "repro.pipeline.stages:_compute_profile",
        "declared": [],
        "direct": [],
        "ambient": [],
        "absorbed": OBS_ABSORBED,
    },
    "repro.pipeline.stages._compute_plan": {
        "function": "repro.pipeline.stages:_compute_plan",
        "declared": [],
        "direct": [],
        "ambient": [],
        "absorbed": OBS_ABSORBED,
    },
    "repro.pipeline.stages._compute_ground_truth": {
        "function": "repro.pipeline.stages:_compute_ground_truth",
        "declared": [],
        "direct": [],
        "ambient": [],
        "absorbed": OBS_ABSORBED,
    },
    "repro.pipeline.stages._compute_representatives": {
        "function": "repro.pipeline.stages:_compute_representatives",
        "declared": [],
        "direct": [],
        "ambient": [],
        "absorbed": OBS_ABSORBED,
    },
    "repro.pipeline.stages._compute_estimate": {
        "function": "repro.pipeline.stages:_compute_estimate",
        "declared": [],
        "direct": [],
        "ambient": [],
        "absorbed": [],
    },
}


@pytest.fixture(scope="module")
def head_flow():
    return get_flow(load_project(load_config(REPO_ROOT)))


class TestHeadGoldens:
    def test_every_stage_compute_digest_is_pinned(self, head_flow):
        for qualname, expected in GOLDEN_DIGESTS.items():
            assert head_flow.digest(qualname) == expected, qualname

    def test_stage_cones_are_ambient_clean(self, head_flow):
        # The cache-purity guarantee, stated directly: nothing a stage
        # fingerprint misses flows into any compute cone.
        for qualname in GOLDEN_DIGESTS:
            assert head_flow.ambient[qualname] == frozenset(), qualname

    def test_digest_is_deterministic_across_builds(self, head_flow):
        from repro.lint.flow import FlowAnalysis

        rebuilt = FlowAnalysis(head_flow.project)
        for qualname in GOLDEN_DIGESTS:
            assert json.dumps(rebuilt.summary(qualname), sort_keys=True) == (
                json.dumps(head_flow.summary(qualname), sort_keys=True)
            )

    def test_repo_flow_rules_are_clean_at_head(self):
        result = run_lint(load_config(REPO_ROOT), select=FLOW_RULES)
        assert result.findings == [], "\n".join(
            finding.render() for finding in result.findings
        )
        assert result.baselined == []

    def test_worker_ship_sites_are_all_known(self, head_flow):
        # Every callable crossing the pool boundary at HEAD resolves to
        # a top-level function — no lambdas, no unresolved targets.
        for site in head_flow.graph.ship_sites:
            assert site.problem is None, (site.relpath, site.line)
            assert site.target is not None, (site.relpath, site.line)
            assert head_flow.graph.functions[site.target].is_toplevel


class TestInjectedAmbientIsCaught:
    """ISSUE acceptance: an `os.environ` read smuggled into the cone of
    `_compute_profile` (three calls deep, inside the functional
    simulator) must produce a MEG010 finding naming the chain."""

    def test_env_read_in_functional_sim_trips_meg010(self, tmp_path):
        shutil.copytree(REPO_ROOT / "src", tmp_path / "src")
        shutil.copy(REPO_ROOT / "pyproject.toml", tmp_path / "pyproject.toml")
        target = tmp_path / "src/repro/gpu/functional_sim.py"
        source = target.read_text()
        assert "import numpy as np" in source
        source = source.replace(
            "import numpy as np", "import os\nimport numpy as np", 1
        )
        marker = '"""Profile every frame of ``trace``."""'
        assert marker in source
        source = source.replace(
            marker,
            marker + '\n        os.environ.get("MEGSIM_INJECTED")',
            1,
        )
        target.write_text(source)

        result = run_lint(load_config(tmp_path), select=("MEG010",))
        findings = [f for f in result.findings if f.rule_id == "MEG010"]
        assert findings, "injected ambient env read was not detected"
        text = "\n".join(f.message for f in findings)
        assert "stage 'profile'" in text
        assert "ambient env (os.environ)" in text
        assert (
            "repro.pipeline.stages:_compute_profile -> "
            "repro.gpu.functional_sim:FunctionalSimulator.profile"
        ) in text
