"""Quickstart: sample a game sequence with MEGsim and check the accuracy.

Runs the whole methodology end to end on a shortened Beach Buggy Racing
sequence:

1. generate the workload trace,
2. let MEGsim pick representative frames (functional profile -> feature
   matrix -> BIC-guided k-means),
3. cycle-accurately simulate ONLY the representatives,
4. extrapolate whole-sequence statistics and compare against the fully
   simulated ground truth (which this script also runs, just to grade the
   estimate — in real use that is exactly the cost you avoid).

Run:  python examples/quickstart.py
"""

from repro import CycleAccurateSimulator, MEGsim, make_benchmark

SCALE = 0.25  # a quarter-length sequence keeps this demo under a minute


def main() -> None:
    print("Generating the bbr1 trace...")
    trace = make_benchmark("bbr1", scale=SCALE)
    print(f"  {trace.frame_count} frames, "
          f"{len(trace.vertex_shaders)} vertex shaders, "
          f"{len(trace.fragment_shaders)} fragment shaders")

    print("\nRunning MEGsim (functional profile + clustering)...")
    plan = MEGsim().plan(trace)
    print(f"  selected {plan.selected_frame_count} representative frames "
          f"out of {plan.total_frames} "
          f"(reduction {plan.reduction_factor:.0f}x)")

    simulator = CycleAccurateSimulator()
    print("\nSimulating ONLY the representatives (what MEGsim costs)...")
    reps = simulator.simulate(trace, frame_ids=list(plan.representative_frames))
    estimate = plan.estimate(dict(zip(reps.frame_ids, reps.frame_stats)))
    print(f"  done in {reps.elapsed_seconds:.2f}s")

    print("\nSimulating the FULL sequence (only to grade the estimate)...")
    full = simulator.simulate(trace)
    print(f"  done in {full.elapsed_seconds:.2f}s "
          f"-> wall-clock speedup {full.elapsed_seconds / reps.elapsed_seconds:.0f}x")

    truth = full.totals
    print("\nEstimated vs. measured whole-sequence statistics:")
    for metric in ("cycles", "dram_accesses", "l2_accesses",
                   "tile_cache_accesses"):
        est = getattr(estimate, metric)
        ref = getattr(truth, metric)
        print(f"  {metric:22s} est {est:15.3e}  true {ref:15.3e}  "
              f"rel.err {abs(est - ref) / ref * 100:5.2f}%")


if __name__ == "__main__":
    main()
