"""Characterising a custom game workload.

Shows the library as a downstream user would adopt it: define your own
game (phase archetypes + a gameplay script), generate the trace, and let
MEGsim characterise it — including the similarity matrix (Figure 5 style),
the BIC search trace and the final sampling plan.

Run:  python examples/custom_workload.py
"""

from repro import CycleAccurateSimulator, MEGsim
from repro.core.features import build_feature_matrix
from repro.core.similarity import render_similarity_matrix, similarity_matrix
from repro.gpu.functional_sim import FunctionalSimulator
from repro.workloads.generator import GameWorkloadGenerator
from repro.workloads.specs import GameSpec, PhaseSpec, ScriptEntry


def tower_defense_spec() -> GameSpec:
    """A hypothetical 3D tower-defense game with three recurring phases."""
    phases = (
        PhaseSpec("build", draw_calls=30, object_scale=1.2, overdraw=1.9,
                  motion=0.3, camera_distance=25.0, shader_groups=(0, 1),
                  drift=0.1),
        PhaseSpec("wave", draw_calls=48, object_scale=1.3, overdraw=2.4,
                  motion=0.8, instancing=2.5, camera_distance=20.0,
                  shader_groups=(1, 2), drift=0.25),
        PhaseSpec("boss", draw_calls=40, object_scale=1.8, overdraw=2.8,
                  motion=0.9, camera_distance=12.0,
                  transparent_fraction=0.4, shader_groups=(2, 3), drift=0.2),
    )
    script = (
        ScriptEntry("build", 120), ScriptEntry("wave", 180),
        ScriptEntry("build", 100), ScriptEntry("wave", 200),
        ScriptEntry("boss", 140), ScriptEntry("build", 60),
    )
    return GameSpec(
        alias="towers", title="Tower Clash", description="Tower defense",
        game_type="3D", downloads_millions="n/a", frames=800,
        vertex_shader_count=18, fragment_shader_count=22,
        phases=phases, script=script, seed=2026,
        mesh_pool=35, texture_pool=20,
        mesh_vertices=700, fragment_alu=24, vertex_alu=40,
    )


def main() -> None:
    spec = tower_defense_spec()
    print(f"Generating custom workload {spec.title!r} ({spec.frames} frames)...")
    trace = GameWorkloadGenerator(spec).generate()

    print("Profiling functionally and building the feature matrix...")
    profile = FunctionalSimulator().profile(trace)
    features, groups = build_feature_matrix(profile)
    print(f"  feature matrix: {features.shape[0]} frames x "
          f"{features.shape[1]} dimensions "
          f"(VSCV {groups.vscv.stop - groups.vscv.start}, "
          f"FSCV {groups.fscv.stop - groups.fscv.start}, PRIM 1)")

    print("\nSimilarity matrix (dense characters = similar frames):")
    print(render_similarity_matrix(
        similarity_matrix(features, upper_only=False), width=56
    ))

    plan = MEGsim().plan_from_profile(profile)
    print(f"\nBIC search explored k = {plan.search.explored_k[-1]} "
          f"and chose k = {plan.search.chosen_k}")
    for k, score in plan.search.bic_by_k.items():
        marker = " <-- chosen" if k == plan.search.chosen_k else ""
        print(f"  k={k:3d}  BIC={score:12.1f}{marker}")

    print(f"\nSampling plan: {plan.selected_frame_count} representatives "
          f"(reduction {plan.reduction_factor:.0f}x)")
    simulator = CycleAccurateSimulator()
    reps = simulator.simulate(trace, frame_ids=list(plan.representative_frames))
    estimate = plan.estimate(dict(zip(reps.frame_ids, reps.frame_stats)))
    print(f"Estimated sequence totals: {estimate.cycles:.3e} cycles, "
          f"{estimate.dram_accesses:.3e} DRAM accesses, "
          f"IPC {estimate.ipc:.2f}")


if __name__ == "__main__":
    main()
