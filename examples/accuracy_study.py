"""Accuracy study: MEGsim vs random sub-sampling on one benchmark.

Reproduces the Section V-C comparison interactively for a single game:
how many frames does naive random sub-sampling need before its cycles
estimate (at 95% confidence over many trials) matches MEGsim's?

Run:  python examples/accuracy_study.py [alias] [scale]
"""

import sys

import numpy as np

from repro.analysis.metrics import percentile_abs_error
from repro.analysis.random_study import (
    megsim_error_distribution,
    random_error_at_k,
    random_frames_for_error,
)
from repro.analysis.runner import evaluate_benchmark


def main() -> None:
    alias = sys.argv[1] if len(sys.argv) > 1 else "pvz"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.2

    print(f"Evaluating {alias} at scale {scale}...")
    evaluation = evaluate_benchmark(alias, scale=scale)
    cycles = evaluation.metric_vector("cycles")
    features = evaluation.plan.features

    print("MEGsim over 20 k-means seeds...")
    errors, selected = megsim_error_distribution(features, cycles, trials=20)
    megsim_error = percentile_abs_error(errors, 95.0)
    megsim_frames = float(selected.mean())
    print(f"  frames: {megsim_frames:.0f}   "
          f"max rel.err (95% conf): {megsim_error * 100:.2f}%")

    print("\nRandom sub-sampling error vs number of representatives:")
    rng = np.random.default_rng(0)
    for k in (1, 4, 16, 64, 256):
        if k > cycles.size:
            break
        err = random_error_at_k(cycles, k, trials=500, rng=rng)
        print(f"  k={k:4d}  err(95%)={err * 100:6.2f}%")

    matched = random_frames_for_error(cycles, megsim_error, trials=500)
    print(f"\nFrames random sub-sampling needs to match MEGsim: {matched}")
    print(f"That is {matched / megsim_frames:.1f}x more frames than MEGsim "
          f"(paper Table IV average: 58.5x at full scale).")


if __name__ == "__main__":
    main()
