"""Comparing rendering architectures: TBR vs TBDR (HSR) vs IMR.

Section II-A of the paper explains why mobile GPUs use Tile-Based
Rendering: immediate-mode GPUs write occluded fragments' colors to main
memory over and over (overdraw traffic), while TBR resolves each pixel
exactly once; deferred TBR (PowerVR-style Hidden Surface Removal) goes
further and never even *shades* occluded opaque fragments.

Section IV-A claims MEGsim ports across architectures unchanged, because
its characterisation parameters are architecture independent.  This
example demonstrates both on one benchmark.

Run:  python examples/rendering_modes.py [alias] [scale]
"""

import dataclasses
import sys

from repro.analysis.runner import evaluate_benchmark
from repro.gpu.config import default_config


def main() -> None:
    alias = sys.argv[1] if len(sys.argv) > 1 else "bbr1"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.1

    print(f"{'mode':>5s} | {'cycles':>10s} | {'DRAM lines':>10s} | "
          f"{'frags shaded':>12s} | {'tile cache':>10s} | "
          f"{'MEGsim k':>8s} | cycles err")
    for mode in ("tbr", "tbdr", "imr"):
        config = dataclasses.replace(default_config(), rendering_mode=mode)
        evaluation = evaluate_benchmark(alias, scale=scale, config=config)
        totals = evaluation.totals
        errors = evaluation.relative_errors()
        print(f"{mode:>5s} | {totals.cycles:10.3e} | "
              f"{totals.dram_accesses:10.3e} | "
              f"{totals.fragments_shaded:12.3e} | "
              f"{totals.tile_cache_accesses:10.3e} | "
              f"{evaluation.plan.selected_frame_count:8d} | "
              f"{errors['cycles'] * 100:5.2f}%")

    print(
        "\nReading: TBDR shades the fewest fragments (HSR kills opaque\n"
        "overdraw) and finishes fastest.  IMR has zero tile-cache activity\n"
        "(no Tiling Engine) but pays per-fragment depth/color traffic to\n"
        "main memory; whether its total DRAM traffic exceeds TBR's depends\n"
        "on the overdraw-vs-geometry balance (TBR spends traffic on the\n"
        "varyings buffer and polygon lists instead).  MEGsim's accuracy\n"
        "holds on every architecture — the features are architecture\n"
        "independent, so one methodology serves all three."
    )


if __name__ == "__main__":
    main()
