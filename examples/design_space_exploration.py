"""Design-space exploration with MEGsim — the paper's motivating use case.

The introduction's pain point: sweeping a GPU design space means running
hundreds of cycle-accurate simulations, each taking up to a day per
workload.  MEGsim fixes this because the representative frames are chosen
from *architecture-independent* parameters (shader executions, primitives)
— so ONE clustering is reused across every design point.

This script sweeps the L2 cache size and the number of fragment processors
over a Jetpack Joyride sequence, evaluating every design point twice:

* **full**: simulating every frame (the reference), and
* **MEGsim**: simulating only the representatives,

then shows that the design ranking and the trends agree while the sampled
sweep runs an order of magnitude faster.

Run:  python examples/design_space_exploration.py
"""

import dataclasses
import time

from repro import CycleAccurateSimulator, MEGsim, make_benchmark
from repro.gpu.config import CacheConfig, default_config

SCALE = 0.12

L2_SIZES_KIB = (128, 256, 512)
FRAGMENT_PROCESSORS = (2, 4, 8)


def design_points():
    base = default_config()
    for l2_kib in L2_SIZES_KIB:
        for fps in FRAGMENT_PROCESSORS:
            config = dataclasses.replace(
                base,
                l2_cache=CacheConfig("l2", l2_kib * 1024, banks=8,
                                     latency_cycles=18),
                fragment_processors=fps,
            )
            yield f"L2={l2_kib}KiB,FP={fps}", config


def main() -> None:
    trace = make_benchmark("jjo", scale=SCALE)
    print(f"Workload: jjo, {trace.frame_count} frames")

    # One architecture-independent clustering, reused for every point.
    plan = MEGsim().plan(trace)
    reps = list(plan.representative_frames)
    print(f"MEGsim representatives: {len(reps)} frames "
          f"(reduction {plan.reduction_factor:.0f}x)\n")

    rows = []
    full_time = sampled_time = 0.0
    for label, config in design_points():
        simulator = CycleAccurateSimulator(config)

        started = time.perf_counter()
        full = simulator.simulate(trace)
        full_time += time.perf_counter() - started

        started = time.perf_counter()
        sampled = simulator.simulate(trace, frame_ids=reps)
        sampled_time += time.perf_counter() - started
        estimate = plan.estimate(
            dict(zip(sampled.frame_ids, sampled.frame_stats))
        )

        truth = full.totals.cycles
        error = abs(estimate.cycles - truth) / truth * 100
        rows.append((label, truth, estimate.cycles, error))

    print(f"{'design point':>18s} | {'full cycles':>12s} | "
          f"{'MEGsim cycles':>13s} | rel.err")
    for label, truth, estimated, error in rows:
        print(f"{label:>18s} | {truth:12.4e} | {estimated:13.4e} | "
              f"{error:5.2f}%")

    full_rank = [r[0] for r in sorted(rows, key=lambda r: r[1])]
    megsim_rank = [r[0] for r in sorted(rows, key=lambda r: r[2])]
    print(f"\nDesign ranking identical: {full_rank == megsim_rank}")
    print(f"Sweep time: full {full_time:.1f}s vs MEGsim {sampled_time:.1f}s "
          f"({full_time / sampled_time:.0f}x faster)")


if __name__ == "__main__":
    main()
